// Scaled-down assertions of the paper's headline findings. These run on
// smaller graphs than the benches (to stay test-fast) but check the same
// qualitative orderings the study reports, so a regression that flips a
// conclusion fails CI rather than silently corrupting EXPERIMENTS.md.

#include <gtest/gtest.h>

#include "core/database.h"
#include "graph/generator.h"

namespace tcdb {
namespace {

std::unique_ptr<TcDatabase> MakeDb(NodeId n, int32_t degree, int32_t locality,
                                   uint64_t seed) {
  auto db = TcDatabase::Create(GenerateDag({n, degree, locality, seed}), n);
  TCDB_CHECK(db.ok());
  return std::move(db).value();
}

uint64_t TotalIo(TcDatabase* db, Algorithm algorithm, const QuerySpec& query,
                 const ExecOptions& options) {
  auto run = db->Execute(algorithm, query, options);
  TCDB_CHECK(run.ok()) << run.status().ToString();
  return run.value().metrics.TotalIo();
}

// Conclusion 1 (Figure 6): blocking hurts HYB; no blocking == BTC.
TEST(PaperClaimsTest, BlockingHurtsHybrid) {
  auto db = MakeDb(800, 10, 800, 42);
  ExecOptions options;
  options.buffer_pages = 20;
  const uint64_t btc = TotalIo(db.get(), Algorithm::kBtc, QuerySpec::Full(),
                               options);
  options.ilimit = 0.3;
  const uint64_t hyb = TotalIo(db.get(), Algorithm::kHyb, QuerySpec::Full(),
                               options);
  EXPECT_GT(hyb, btc);
}

// Conclusion 1 (Figure 7): the successor-tree algorithms do more page I/O
// than BTC for CTC although they generate far fewer duplicates.
TEST(PaperClaimsTest, SpanningTreesSaveDuplicatesNotPageIo) {
  auto db = MakeDb(800, 5, 100, 43);
  ExecOptions options;
  options.buffer_pages = 20;
  auto btc = db->Execute(Algorithm::kBtc, QuerySpec::Full(), options);
  auto spn = db->Execute(Algorithm::kSpn, QuerySpec::Full(), options);
  ASSERT_TRUE(btc.ok());
  ASSERT_TRUE(spn.ok());
  EXPECT_GE(spn.value().metrics.TotalIo(), btc.value().metrics.TotalIo());
  EXPECT_LT(spn.value().metrics.duplicates(),
            btc.value().metrics.duplicates() / 4);
}

// Figure 7: JKB's preprocessing (predecessor lists from the
// source-clustered relation) is far worse than JKB2's dual representation.
TEST(PaperClaimsTest, DualRepresentationRescuesComputeTree) {
  auto db = MakeDb(800, 20, 100, 44);
  ExecOptions options;
  options.buffer_pages = 20;
  const uint64_t jkb = TotalIo(db.get(), Algorithm::kJkb, QuerySpec::Full(),
                               options);
  const uint64_t jkb2 = TotalIo(db.get(), Algorithm::kJkb2, QuerySpec::Full(),
                                options);
  EXPECT_GT(jkb, jkb2);
}

// Conclusion 2: the single-parent optimization gives BJ a (small) edge over
// BTC for high-selectivity PTC on low out-degree graphs.
TEST(PaperClaimsTest, SingleParentHelpsHighSelectivity) {
  ExecOptions options;
  options.buffer_pages = 10;
  uint64_t btc_total = 0;
  uint64_t bj_total = 0;
  for (uint64_t seed = 1; seed <= 3; ++seed) {
    auto db = MakeDb(1000, 2, 50, seed);
    const QuerySpec query =
        QuerySpec::Partial(SampleSourceNodes(1000, 5, seed));
    btc_total += TotalIo(db.get(), Algorithm::kBtc, query, options);
    bj_total += TotalIo(db.get(), Algorithm::kBj, query, options);
  }
  EXPECT_LT(bj_total, btc_total);
}

// Conclusion 3 (Table 4): JKB2 beats BTC on narrow graphs and loses on
// wide graphs.
TEST(PaperClaimsTest, ComputeTreeWinsOnNarrowLosesOnWide) {
  ExecOptions options;
  options.buffer_pages = 10;
  // Narrow: high depth, low width (small locality).
  auto narrow = MakeDb(1500, 5, 15, 45);
  const QuerySpec narrow_query =
      QuerySpec::Partial(SampleSourceNodes(1500, 8, 1));
  EXPECT_LT(TotalIo(narrow.get(), Algorithm::kJkb2, narrow_query, options) * 2,
            TotalIo(narrow.get(), Algorithm::kBtc, narrow_query, options));
  // Wide: shallow, high width (huge locality, high degree).
  auto wide = MakeDb(1500, 40, 1500, 46);
  const QuerySpec wide_query =
      QuerySpec::Partial(SampleSourceNodes(1500, 20, 2));
  EXPECT_GT(TotalIo(wide.get(), Algorithm::kJkb2, wide_query, options),
            TotalIo(wide.get(), Algorithm::kBtc, wide_query, options));
}

// Conclusion 4: SRCH is best at very high selectivity and deteriorates as
// the number of sources grows.
TEST(PaperClaimsTest, SearchBestAtHighSelectivityOnly) {
  auto db = MakeDb(1000, 5, 100, 47);
  ExecOptions options;
  options.buffer_pages = 10;
  const QuerySpec tiny = QuerySpec::Partial(SampleSourceNodes(1000, 2, 3));
  EXPECT_LT(TotalIo(db.get(), Algorithm::kSrch, tiny, options),
            TotalIo(db.get(), Algorithm::kBtc, tiny, options));
  // Cost grows roughly linearly with s; BTC's does not.
  const uint64_t search_small =
      TotalIo(db.get(), Algorithm::kSrch,
              QuerySpec::Partial(SampleSourceNodes(1000, 5, 4)), options);
  const uint64_t search_large =
      TotalIo(db.get(), Algorithm::kSrch,
              QuerySpec::Partial(SampleSourceNodes(1000, 100, 4)), options);
  EXPECT_GT(search_large, search_small * 5);
}

// Section 6.3.2-6.3.3: JKB2 has near-optimal selection efficiency but near
// zero marking utilization; BTC is the opposite.
TEST(PaperClaimsTest, SelectionEfficiencyVsMarkingUtilization) {
  auto db = MakeDb(1000, 5, 30, 48);
  ExecOptions options;
  options.buffer_pages = 10;
  const QuerySpec query = QuerySpec::Partial(SampleSourceNodes(1000, 5, 5));
  auto btc = db->Execute(Algorithm::kBtc, query, options);
  auto jkb2 = db->Execute(Algorithm::kJkb2, query, options);
  ASSERT_TRUE(btc.ok());
  ASSERT_TRUE(jkb2.ok());
  EXPECT_GT(jkb2.value().metrics.SelectionEfficiency(),
            5 * btc.value().metrics.SelectionEfficiency());
  EXPECT_LT(jkb2.value().metrics.MarkingPercentage(), 5.0);
  EXPECT_GT(btc.value().metrics.MarkingPercentage(), 20.0);
  EXPECT_GT(jkb2.value().metrics.list_unions,
            btc.value().metrics.list_unions);
  // Figure 12: the unions JKB2 performs have worse locality.
  EXPECT_GT(jkb2.value().metrics.AvgUnmarkedLocality(),
            btc.value().metrics.AvgUnmarkedLocality());
}

// Section 7 (evaluation methodology): the tuple-level metrics rank SPN
// ahead of BTC while page I/O ranks it behind — the paper's core
// methodological point that cheap metrics cannot predict page I/O.
TEST(PaperClaimsTest, TupleMetricsDisagreeWithPageIo) {
  auto db = MakeDb(800, 5, 100, 49);
  ExecOptions options;
  options.buffer_pages = 20;
  auto btc = db->Execute(Algorithm::kBtc, QuerySpec::Full(), options);
  auto spn = db->Execute(Algorithm::kSpn, QuerySpec::Full(), options);
  ASSERT_TRUE(btc.ok());
  ASSERT_TRUE(spn.ok());
  // By tuples generated (deductions), SPN looks better...
  EXPECT_LT(spn.value().metrics.tuples_generated,
            btc.value().metrics.tuples_generated);
  // ...but by page I/O it is not.
  EXPECT_GE(spn.value().metrics.TotalIo(), btc.value().metrics.TotalIo());
}

// Related work: the matrix family improves in the expected order — blocked
// Warren needs no more I/O than plain Warren, and both crush Warshall's
// n-sweep behaviour.
TEST(PaperClaimsTest, MatrixFamilyOrdering) {
  // n = 1000: the bit matrix (63 pages) dwarfs the pool, as in the study.
  auto db = MakeDb(1000, 5, 100, 51);
  ExecOptions options;
  options.buffer_pages = 10;
  const uint64_t warshall =
      TotalIo(db.get(), Algorithm::kWarshall, QuerySpec::Full(), options);
  const uint64_t warren =
      TotalIo(db.get(), Algorithm::kWarren, QuerySpec::Full(), options);
  const uint64_t blocked =
      TotalIo(db.get(), Algorithm::kWarrenBlocked, QuerySpec::Full(), options);
  EXPECT_LT(warren, warshall / 2);
  EXPECT_LE(blocked, warren);
}

// Figure 13: JKB2 becomes memory-resident once its trees fit: with a large
// pool its computation-phase misses nearly vanish and the hit ratio beats
// BTC's.
TEST(PaperClaimsTest, ComputeTreeBecomesMemoryResident) {
  auto db = MakeDb(1000, 5, 25, 50);
  const QuerySpec query = QuerySpec::Partial(SampleSourceNodes(1000, 8, 6));
  ExecOptions small;
  small.buffer_pages = 8;
  ExecOptions large;
  large.buffer_pages = 64;
  auto small_run = db->Execute(Algorithm::kJkb2, query, small);
  auto large_run = db->Execute(Algorithm::kJkb2, query, large);
  ASSERT_TRUE(small_run.ok());
  ASSERT_TRUE(large_run.ok());
  EXPECT_LT(large_run.value().metrics.TotalIo(),
            small_run.value().metrics.TotalIo());
  EXPECT_GT(large_run.value().metrics.ComputeHitRatio(), 0.95);
}

}  // namespace
}  // namespace tcdb
