// RunMetrics arithmetic: accumulation, averaging, derived ratios.

#include <gtest/gtest.h>

#include "core/metrics.h"

namespace tcdb {
namespace {

RunMetrics Sample() {
  RunMetrics m;
  m.restructure_reads = 10;
  m.restructure_writes = 4;
  m.compute_reads = 100;
  m.compute_writes = 50;
  m.compute_list_hits = 75;
  m.compute_list_misses = 25;
  m.arcs_processed = 200;
  m.arcs_marked = 50;
  m.list_unions = 150;
  m.tuples_generated = 1000;
  m.tuples_inserted = 600;
  m.distinct_tuples = 700;
  m.selected_tuples = 70;
  m.unmarked_locality_sum = 300;
  m.restructure_cpu_s = 0.5;
  m.compute_cpu_s = 1.5;
  return m;
}

TEST(RunMetricsTest, DerivedQuantities) {
  const RunMetrics m = Sample();
  EXPECT_EQ(m.RestructureIo(), 14u);
  EXPECT_EQ(m.ComputeIo(), 150u);
  EXPECT_EQ(m.TotalIo(), 164u);
  EXPECT_DOUBLE_EQ(m.ComputeHitRatio(), 0.75);
  EXPECT_EQ(m.duplicates(), 400);
  EXPECT_DOUBLE_EQ(m.MarkingPercentage(), 25.0);
  EXPECT_DOUBLE_EQ(m.SelectionEfficiency(), 0.07);
  EXPECT_DOUBLE_EQ(m.AvgUnmarkedLocality(), 2.0);  // 300 / (200 - 50)
  EXPECT_DOUBLE_EQ(m.EstimatedIoSeconds(0.020), 164 * 0.020);
}

TEST(RunMetricsTest, ZeroSafeRatios) {
  const RunMetrics m;
  EXPECT_EQ(m.ComputeHitRatio(), 0.0);
  EXPECT_EQ(m.MarkingPercentage(), 0.0);
  EXPECT_EQ(m.SelectionEfficiency(), 0.0);
  EXPECT_EQ(m.AvgUnmarkedLocality(), 0.0);
}

TEST(RunMetricsTest, AccumulateThenScaleDownAverages) {
  RunMetrics total;
  for (int i = 0; i < 4; ++i) total.Accumulate(Sample());
  total.ScaleDown(4);
  const RunMetrics expected = Sample();
  EXPECT_EQ(total.TotalIo(), expected.TotalIo());
  EXPECT_EQ(total.tuples_generated, expected.tuples_generated);
  EXPECT_EQ(total.arcs_marked, expected.arcs_marked);
  EXPECT_DOUBLE_EQ(total.compute_cpu_s, expected.compute_cpu_s);
}

TEST(RunMetricsTest, ScaleDownRounds) {
  RunMetrics a;
  a.compute_reads = 10;
  RunMetrics b;
  b.compute_reads = 15;
  a.Accumulate(b);
  a.ScaleDown(2);
  EXPECT_EQ(a.compute_reads, 13u);  // 12.5 rounds up
}

TEST(RunMetricsTest, ScaleDownByOneIsIdentity) {
  RunMetrics m = Sample();
  m.ScaleDown(1);
  EXPECT_EQ(m.TotalIo(), Sample().TotalIo());
}

TEST(RunMetricsTest, ToStringMentionsKeyCounters) {
  const std::string s = Sample().ToString();
  EXPECT_NE(s.find("total_io=164"), std::string::npos);
  EXPECT_NE(s.find("unions=150"), std::string::npos);
  EXPECT_NE(s.find("marked=50/200"), std::string::npos);
}

}  // namespace
}  // namespace tcdb
