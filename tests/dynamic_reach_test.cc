// Dynamic-update tests (ctest label: `dynamic`): DeltaOverlay net
// semantics, MutationLog epochs and its paged mirror, the
// DynamicReachService serving ladder (snapshot / overlay-patched /
// escalated), snapshot adoption, and the randomized differential sweep —
// >= 10k mixed insert/delete/query ops across the generator's graph
// families, every answer checked bit-for-bit against a reference closure
// at that epoch.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <utility>
#include <vector>

#include "dynamic/delta_overlay.h"
#include "dynamic/dynamic_reach_service.h"
#include "dynamic/index_rebuilder.h"
#include "dynamic/mutation_log.h"
#include "dynamic/mutation_stress.h"
#include "graph/algorithms.h"
#include "graph/generator.h"

namespace tcdb {
namespace {

// --- DeltaOverlay -------------------------------------------------------

TEST(DeltaOverlayTest, InsertThenDeleteCancelsToEmpty) {
  DeltaOverlay overlay;
  overlay.RecordInsert(1, 2);
  EXPECT_EQ(overlay.num_inserted(), 1u);
  EXPECT_FALSE(overlay.empty());
  overlay.RecordDelete(1, 2);
  EXPECT_TRUE(overlay.empty());
  EXPECT_FALSE(overlay.has_deletions());
}

TEST(DeltaOverlayTest, DeleteThenInsertCancelsTombstone) {
  DeltaOverlay overlay;
  overlay.RecordDelete(3, 4);
  EXPECT_TRUE(overlay.IsDeleted(3, 4));
  EXPECT_TRUE(overlay.has_deletions());
  overlay.RecordInsert(3, 4);
  EXPECT_FALSE(overlay.IsDeleted(3, 4));
  EXPECT_TRUE(overlay.empty());
}

TEST(DeltaOverlayTest, AdjacencyAndEnumeration) {
  DeltaOverlay overlay;
  overlay.RecordInsert(1, 2);
  overlay.RecordInsert(1, 5);
  overlay.RecordInsert(7, 2);
  overlay.RecordDelete(9, 9);
  const auto row = overlay.InsertedSuccessors(1);
  std::vector<NodeId> sorted(row.begin(), row.end());
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, (std::vector<NodeId>{2, 5}));
  EXPECT_TRUE(overlay.InsertedSuccessors(2).empty());
  std::vector<NodeId> sources = overlay.InsertedSources();
  std::sort(sources.begin(), sources.end());
  EXPECT_EQ(sources, (std::vector<NodeId>{1, 7}));
  const std::vector<Arc> deleted = overlay.DeletedArcs();
  ASSERT_EQ(deleted.size(), 1u);
  EXPECT_EQ(deleted[0].src, 9);
  EXPECT_EQ(deleted[0].dst, 9);
  overlay.Clear();
  EXPECT_TRUE(overlay.empty());
}

// --- MutationLog --------------------------------------------------------

TEST(MutationLogTest, OpenDedupesAndMirrors) {
  const ArcList base = {{0, 1}, {1, 2}, {0, 1}};  // duplicate collapses
  auto log = MutationLog::Open(base, 3);
  ASSERT_TRUE(log.ok()) << log.status().ToString();
  EXPECT_EQ(log.value()->num_live_arcs(), 2);
  EXPECT_EQ(log.value()->current_epoch(), 0);
  EXPECT_TRUE(log.value()->HasArc(0, 1));
  EXPECT_FALSE(log.value()->HasArc(1, 0));
  std::vector<NodeId> row;
  ASSERT_TRUE(log.value()->ReadSuccessors(0, &row).ok());
  EXPECT_EQ(row, std::vector<NodeId>{1});
}

TEST(MutationLogTest, MutationStatusesAndEpochs) {
  auto log = MutationLog::Open({{0, 1}}, 4);
  ASSERT_TRUE(log.ok());
  MutationLog* m = log.value().get();
  // Validation: range, self-loops, double insert, missing delete.
  EXPECT_EQ(m->InsertArc(0, 9).status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(m->InsertArc(2, 2).status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(m->InsertArc(0, 1).status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(m->DeleteArc(1, 0).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(m->current_epoch(), 0);  // rejected mutations mint no epoch

  auto e1 = m->InsertArc(1, 2);
  ASSERT_TRUE(e1.ok());
  EXPECT_EQ(e1.value(), 1);
  auto e2 = m->DeleteArc(0, 1);
  ASSERT_TRUE(e2.ok());
  EXPECT_EQ(e2.value(), 2);
  EXPECT_EQ(m->current_epoch(), 2);
  EXPECT_EQ(m->num_live_arcs(), 1);

  const MutationLog::ArcSnapshot snap = m->SnapshotArcs();
  EXPECT_EQ(snap.epoch, 2);
  ASSERT_EQ(snap.arcs.size(), 1u);
  EXPECT_EQ(snap.arcs[0].src, 1);
  EXPECT_EQ(snap.arcs[0].dst, 2);

  // The paged mirror tracked both mutations.
  std::vector<NodeId> row;
  ASSERT_TRUE(m->ReadSuccessors(0, &row).ok());
  EXPECT_TRUE(row.empty());
  row.clear();
  ASSERT_TRUE(m->ReadSuccessors(1, &row).ok());
  EXPECT_EQ(row, std::vector<NodeId>{2});
  EXPECT_TRUE(m->buffers()->AuditNoPins().ok());
}

TEST(MutationLogTest, RebaseReplaysSuffixNotNetDifference) {
  auto log = MutationLog::Open({}, 4);
  ASSERT_TRUE(log.ok());
  MutationLog* m = log.value().get();
  ASSERT_TRUE(m->InsertArc(0, 1).ok());  // epoch 1
  ASSERT_TRUE(m->DeleteArc(0, 1).ok());  // epoch 2
  // Relative to epoch 0 the overlay nets out to nothing.
  EXPECT_TRUE(m->overlay().empty());
  // Relative to epoch 1 (a snapshot that contains the arc) the delete is
  // a tombstone — pruning the netted overlay could never produce this.
  m->RebaseOverlay(1);
  EXPECT_TRUE(m->overlay().IsDeleted(0, 1));
  EXPECT_EQ(m->overlay().num_inserted(), 0u);
  // And relative to epoch 2 it is empty again.
  m->RebaseOverlay(2);
  EXPECT_TRUE(m->overlay().empty());
}

// --- DynamicReachService ------------------------------------------------

std::unique_ptr<MutationLog> MustOpen(const ArcList& arcs, NodeId n) {
  auto log = MutationLog::Open(arcs, n);
  TCDB_CHECK(log.ok()) << log.status().ToString();
  return std::move(log.value());
}

std::unique_ptr<DynamicReachService> MustCreate(
    MutationLog* log, const DynamicReachOptions& options = {}) {
  auto service = DynamicReachService::Create(log, options);
  TCDB_CHECK(service.ok()) << service.status().ToString();
  return std::move(service.value());
}

bool MustQuery(DynamicReachService* service, NodeId u, NodeId v,
               ReachStage* stage = nullptr) {
  auto answer = service->Query(u, v);
  TCDB_CHECK(answer.ok()) << answer.status().ToString();
  if (stage != nullptr) *stage = answer.value().stage;
  return answer.value().reachable;
}

// The four stage-expectation tests below pin the legacy three-tier
// ladder (snapshot / overlay-patched / live-BFS), so they opt out of the
// incremental tier — with it on, the O(k) decide would intercept these
// queries first. Answer correctness with the tier on is covered by the
// differential sweeps in incremental_reach_test.cc and below.
DynamicReachOptions LegacyLadder() {
  DynamicReachOptions options;
  options.incremental = false;
  return options;
}

TEST(DynamicReachServiceTest, EmptyOverlayServesFromSnapshot) {
  auto log = MustOpen({{0, 1}, {1, 2}}, 4);
  auto service = MustCreate(log.get());
  EXPECT_TRUE(MustQuery(service.get(), 0, 2));
  EXPECT_FALSE(MustQuery(service.get(), 2, 0));
  EXPECT_FALSE(MustQuery(service.get(), 0, 3));
  EXPECT_EQ(service->stats().snapshot_served, 3);
  EXPECT_EQ(service->stats().overlay_served, 0);
  EXPECT_EQ(service->stats().escalations, 0);
}

TEST(DynamicReachServiceTest, InsertIsVisibleImmediatelyViaOverlay) {
  auto log = MustOpen({{0, 1}, {2, 3}}, 4);
  auto service = MustCreate(log.get(), LegacyLadder());
  EXPECT_FALSE(MustQuery(service.get(), 0, 3));
  ASSERT_TRUE(service->InsertArc(1, 2).ok());
  ReachStage stage;
  EXPECT_TRUE(MustQuery(service.get(), 0, 3, &stage));
  EXPECT_EQ(stage, ReachStage::kOverlayPatched);
  // Insert-only overlays keep definite NO answers definite too.
  EXPECT_FALSE(MustQuery(service.get(), 3, 0, &stage));
  EXPECT_EQ(stage, ReachStage::kOverlayPatched);
  EXPECT_EQ(service->stats().escalations, 0);
}

TEST(DynamicReachServiceTest, DeleteEscalatesAndAnswersCorrectly) {
  auto log = MustOpen({{0, 1}, {1, 2}, {3, 2}}, 4);
  auto service = MustCreate(log.get(), LegacyLadder());
  EXPECT_TRUE(MustQuery(service.get(), 0, 2));
  ASSERT_TRUE(service->DeleteArc(1, 2).ok());
  ReachStage stage;
  EXPECT_FALSE(MustQuery(service.get(), 0, 2, &stage));
  EXPECT_EQ(stage, ReachStage::kLiveBfs);
  EXPECT_TRUE(MustQuery(service.get(), 0, 1));
  EXPECT_TRUE(MustQuery(service.get(), 3, 2));
  EXPECT_GE(service->stats().escalations, 1);
}

TEST(DynamicReachServiceTest, DeletionOutsideConeStaysPatched) {
  // Two disjoint chains; deleting in one must not force the other's
  // queries off the patched path (the relevance scan sees the deleted
  // arc's source is outside the query cone).
  auto log = MustOpen({{0, 1}, {2, 3}}, 4);
  auto service = MustCreate(log.get(), LegacyLadder());
  ASSERT_TRUE(service->DeleteArc(2, 3).ok());
  ReachStage stage;
  EXPECT_TRUE(MustQuery(service.get(), 0, 1, &stage));
  EXPECT_EQ(stage, ReachStage::kOverlayPatched);
  EXPECT_EQ(service->stats().escalations, 0);
}

TEST(DynamicReachServiceTest, ZeroBudgetEscalatesNonEmptyOverlay) {
  DynamicReachOptions options = LegacyLadder();
  options.overlay_probe_budget = 0;
  auto log = MustOpen({{0, 1}}, 4);
  auto service = MustCreate(log.get(), options);
  ASSERT_TRUE(service->InsertArc(1, 2).ok());
  ReachStage stage;
  EXPECT_TRUE(MustQuery(service.get(), 0, 2, &stage));
  EXPECT_EQ(stage, ReachStage::kLiveBfs);
  EXPECT_EQ(service->stats().escalations, 1);
}

TEST(DynamicReachServiceTest, MutationInvalidatesCachedAnswer) {
  auto log = MustOpen({{0, 1}, {1, 2}}, 4);
  auto service = MustCreate(log.get());
  EXPECT_TRUE(MustQuery(service.get(), 0, 2));
  ReachStage stage;
  EXPECT_TRUE(MustQuery(service.get(), 0, 2, &stage));
  EXPECT_EQ(stage, ReachStage::kCache);  // second hit came from the cache
  ASSERT_TRUE(service->DeleteArc(0, 1).ok());
  EXPECT_FALSE(MustQuery(service.get(), 0, 2, &stage));
  EXPECT_NE(stage, ReachStage::kCache);  // the stale entry was invalidated
  ASSERT_TRUE(service->InsertArc(0, 2).ok());
  EXPECT_TRUE(MustQuery(service.get(), 0, 2));
}

TEST(DynamicReachServiceTest, AdoptingRebuiltSnapshotDrainsOverlay) {
  auto log = MustOpen({{0, 1}}, 5);
  auto service = MustCreate(log.get());
  ASSERT_TRUE(service->InsertArc(1, 2).ok());
  ASSERT_TRUE(service->InsertArc(2, 3).ok());
  ASSERT_TRUE(service->DeleteArc(0, 1).ok());
  EXPECT_FALSE(log->overlay().empty());

  IndexRebuilder rebuilder(
      log.get(),
      [&](std::shared_ptr<const ReachCore> core, MutationLog::Epoch epoch,
          double seconds) {
        service->PublishSnapshot(std::move(core), epoch, seconds);
      });
  ASSERT_TRUE(rebuilder.RebuildNow().ok());
  EXPECT_EQ(rebuilder.rebuilds_published(), 1);
  EXPECT_TRUE(service->AdoptPublishedSnapshot());
  EXPECT_EQ(service->snapshot_epoch(), 3);
  EXPECT_TRUE(log->overlay().empty());
  EXPECT_EQ(service->stats().snapshots_adopted, 1);

  // Post-adoption queries run the pure snapshot ladder and agree with the
  // live graph.
  ReachStage stage;
  EXPECT_TRUE(MustQuery(service.get(), 1, 3, &stage));
  EXPECT_NE(stage, ReachStage::kOverlayPatched);
  EXPECT_NE(stage, ReachStage::kLiveBfs);
  EXPECT_FALSE(MustQuery(service.get(), 0, 1));
  EXPECT_GE(service->stats().snapshot_served, 2);

  // A second RebuildNow at the same epoch publishes nothing.
  ASSERT_TRUE(rebuilder.RebuildNow().ok());
  EXPECT_EQ(rebuilder.rebuilds_published(), 1);
  EXPECT_FALSE(service->AdoptPublishedSnapshot());
}

TEST(DynamicReachServiceTest, QueryValidatesEndpoints) {
  auto log = MustOpen({{0, 1}}, 2);
  auto service = MustCreate(log.get());
  EXPECT_EQ(service->Query(0, 2).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(service->Query(-1, 0).status().code(),
            StatusCode::kInvalidArgument);
}

// --- Randomized differential sweep --------------------------------------

// The acceptance bar for the dynamic stack: randomized mixed traces
// totalling >= 10k operations across the generator grid (three node-count
// families, DAG and cyclic variants), every query answered bit-identically
// to a reference closure of the live graph at that epoch, every final
// paged successor list equal to the reference adjacency, and the buffer
// pool pin-clean.
TEST(DynamicDifferentialTest, TenThousandMixedOpsAcrossFamilies) {
  MutationStressOptions options;
  options.num_seeds = 15;
  options.base_seed = 7;
  options.ops_per_seed = 700;
  MutationStressReport report;
  MutationStressFailure failure;
  const Status status = RunMutationStress(options, &report, &failure);
  ASSERT_TRUE(status.ok()) << failure.ToString();
  EXPECT_EQ(report.seeds, 15);
  EXPECT_GE(report.inserts + report.deletes + report.queries, 10000);
  EXPECT_GT(report.deletes, 0);
  EXPECT_GT(report.escalations, 0);
  EXPECT_GT(report.overlay_served, 0);
  EXPECT_GT(report.snapshots_adopted, 0);
}

// Regression for the epoch-skipping hole: MutationStress used to
// validate answers only at the trace's own query ops, so an epoch whose
// damage a later mutation repaired was never checked. A mutation-heavy
// trace (~5% queries) now still validates EVERY intermediate epoch by
// default, and validate_every=0 is pinned as the legacy behaviour.
TEST(DynamicDifferentialTest, EpochBoundaryValidationCoversQuietEpochs) {
  MutationStressOptions options;
  options.num_seeds = 3;
  options.base_seed = 11;
  options.ops_per_seed = 200;
  options.insert_share = 0.55;
  options.delete_share = 0.40;  // leaves ~5% query ops
  MutationStressReport report;
  MutationStressFailure failure;
  ASSERT_TRUE(RunMutationStress(options, &report, &failure).ok())
      << failure.ToString();
  EXPECT_GT(report.inserts + report.deletes, 0);
  // validate_every = 1 (the default): one boundary validation per
  // accepted mutation, query-free stretches included.
  EXPECT_EQ(report.epoch_validations, report.inserts + report.deletes);

  options.validate_every = 0;  // legacy: trace queries + final state only
  MutationStressReport legacy;
  ASSERT_TRUE(RunMutationStress(options, &legacy, &failure).ok())
      << failure.ToString();
  EXPECT_EQ(legacy.epoch_validations, 0);
  // The boundary checks ride a dedicated RNG stream, so the op traces —
  // and hence the answer digests — are identical either way.
  EXPECT_EQ(legacy.inserts, report.inserts);
  EXPECT_EQ(legacy.deletes, report.deletes);
  EXPECT_EQ(legacy.answer_digest, report.answer_digest);
}

// The tier on/off proof at unit scale (check.sh repeats it 50-seed under
// ASan/UBSan): identical traces with the incremental tier on and forced
// off must produce the identical answer digest — the tier may only
// change which stage answers, never what it answers.
TEST(DynamicDifferentialTest, IncrementalTierPreservesAnswerDigest) {
  MutationStressOptions options;
  options.num_seeds = 5;
  options.base_seed = 21;
  options.ops_per_seed = 400;
  MutationStressReport on_report;
  MutationStressFailure failure;
  ASSERT_TRUE(RunMutationStress(options, &on_report, &failure).ok())
      << failure.ToString();
  EXPECT_GT(on_report.incremental_served, 0);

  options.incremental = false;
  MutationStressReport off_report;
  ASSERT_TRUE(RunMutationStress(options, &off_report, &failure).ok())
      << failure.ToString();
  EXPECT_EQ(off_report.incremental_served, 0);
  EXPECT_EQ(off_report.queries, on_report.queries);
  EXPECT_EQ(off_report.answer_digest, on_report.answer_digest);
}

}  // namespace
}  // namespace tcdb
