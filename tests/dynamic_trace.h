#ifndef TCDB_TESTS_DYNAMIC_TRACE_H_
#define TCDB_TESTS_DYNAMIC_TRACE_H_

// Deterministic trace-replay fixture for the dynamic stack: drives the
// full MutationLog -> DynamicReachService -> IndexRebuilder pipeline and
// a ReferenceGraph mirror through the same mutation trace, checking the
// served answers against the reference closure at EVERY epoch boundary
// (right after each accepted mutation) and again after every snapshot
// adoption — the two moments an incremental-repair bug can first surface.
//
// Verification granularity: all pairs when the node count is small
// enough to afford it, otherwise a per-boundary deterministic sample.
// Everything is seeded, so a failing trace replays bit-identically.

#include <cstdint>
#include <memory>
#include <string>
#include <utility>

#include "dynamic/dynamic_reach_service.h"
#include "dynamic/index_rebuilder.h"
#include "dynamic/mutation_log.h"
#include "dynamic/reference_graph.h"
#include "relation/arc.h"
#include "util/random.h"
#include "util/status.h"

namespace tcdb {

struct DynamicTraceOptions {
  DynamicReachOptions service;
  // Mutations between synchronous RebuildNow + AdoptPublishedSnapshot
  // rounds (0 = never; the overlay then grows for the whole trace).
  int32_t rebuild_every = 64;
  // n <= threshold: every boundary checks all n*n pairs. Above it, each
  // boundary checks `sampled_pairs` seeded draws instead.
  NodeId all_pairs_threshold = 32;
  int32_t sampled_pairs = 16;
  // Pair-sampling stream; independent of the caller's op stream so that
  // toggling verification density never changes the trace itself.
  uint64_t seed = 0x7ace;
};

class DynamicTraceHarness {
 public:
  // The harness CHECK-fails on setup errors (bad base graph); trace-time
  // divergences come back as Status so tests can report the failing op.
  DynamicTraceHarness(const ArcList& base, NodeId num_nodes,
                      DynamicTraceOptions options = {})
      : options_(options),
        num_nodes_(num_nodes),
        reference_(num_nodes),
        verify_rng_(options.seed) {
    auto log = MutationLog::Open(base, num_nodes);
    TCDB_CHECK(log.ok()) << log.status().ToString();
    log_ = std::move(log.value());
    auto service = DynamicReachService::Create(log_.get(), options_.service);
    TCDB_CHECK(service.ok()) << service.status().ToString();
    service_ = std::move(service.value());
    IndexRebuilder::Options rebuild_options;
    rebuild_options.index = options_.service.index;
    rebuild_options.rebuild_advised = [this] {
      return service_->RebuildAdvised();
    };
    DynamicReachService* raw = service_.get();
    rebuilder_ = std::make_unique<IndexRebuilder>(
        log_.get(),
        [raw](std::shared_ptr<const ReachCore> core, MutationLog::Epoch epoch,
              double seconds) {
          raw->PublishSnapshot(std::move(core), epoch, seconds);
        },
        rebuild_options);
    for (const Arc& arc : base) {
      if (!reference_.HasArc(arc.src, arc.dst)) {
        reference_.Insert(arc.src, arc.dst);
      }
    }
  }

  // One mutation through both sides, then the epoch-boundary check (and
  // the rebuild/adopt/recheck round when the cadence hits). The arc must
  // be insertable / deletable — use reference() to pick valid arcs.
  Status Insert(NodeId src, NodeId dst) {
    TCDB_RETURN_IF_ERROR(Wrap("InsertArc", src, dst,
                              service_->InsertArc(src, dst).status()));
    reference_.Insert(src, dst);
    ++mutations_;
    return AfterMutation();
  }
  Status Delete(NodeId src, NodeId dst) {
    TCDB_RETURN_IF_ERROR(Wrap("DeleteArc", src, dst,
                              service_->DeleteArc(src, dst).status()));
    reference_.Delete(src, dst);
    ++mutations_;
    return AfterMutation();
  }

  // One random op from the shared family mix: insert_share draws a
  // non-live arc (falling back to a query when the graph is too dense),
  // delete_share deletes a uniform live arc, the rest are query pairs
  // checked directly. Drives `rng` (the caller's op stream) only.
  Status RandomOp(Rng* rng, double insert_share, double delete_share) {
    const double roll = rng->NextDouble();
    if (roll < insert_share) {
      for (int attempt = 0; attempt < 16; ++attempt) {
        const NodeId s = static_cast<NodeId>(rng->Uniform(0, num_nodes_ - 1));
        const NodeId d = static_cast<NodeId>(rng->Uniform(0, num_nodes_ - 1));
        if (s == d || reference_.HasArc(s, d)) continue;
        return Insert(s, d);
      }
    } else if (roll < insert_share + delete_share &&
               reference_.num_arcs() > 0) {
      const size_t pick = static_cast<size_t>(rng->Uniform(
          0, static_cast<int64_t>(reference_.num_arcs()) - 1));
      const Arc arc = reference_.arc(pick);
      return Delete(arc.src, arc.dst);
    }
    const NodeId u = static_cast<NodeId>(rng->Uniform(0, num_nodes_ - 1));
    const NodeId v = static_cast<NodeId>(rng->Uniform(0, num_nodes_ - 1));
    return CheckPair(u, v);
  }

  // Differential check of the current epoch (all pairs or a sample).
  Status VerifyEpoch() {
    ++epochs_verified_;
    if (num_nodes_ <= options_.all_pairs_threshold) {
      for (NodeId u = 0; u < num_nodes_; ++u) {
        for (NodeId v = 0; v < num_nodes_; ++v) {
          TCDB_RETURN_IF_ERROR(CheckPair(u, v));
        }
      }
      return Status::Ok();
    }
    for (int32_t i = 0; i < options_.sampled_pairs; ++i) {
      const NodeId u =
          static_cast<NodeId>(verify_rng_.Uniform(0, num_nodes_ - 1));
      const NodeId v =
          static_cast<NodeId>(verify_rng_.Uniform(0, num_nodes_ - 1));
      TCDB_RETURN_IF_ERROR(CheckPair(u, v));
    }
    return Status::Ok();
  }

  // Synchronous rebuild at the current epoch, adoption, and the
  // post-adoption differential check.
  Status RebuildAndAdopt() {
    TCDB_RETURN_IF_ERROR(rebuilder_->RebuildNow());
    if (service_->AdoptPublishedSnapshot()) ++adoptions_verified_;
    return VerifyEpoch();
  }

  // One served answer vs. the reference closure.
  Status CheckPair(NodeId u, NodeId v) {
    TCDB_ASSIGN_OR_RETURN(const DynamicReachService::Answer answer,
                          service_->Query(u, v));
    const bool expected = reference_.Reaches(u, v);
    if (answer.reachable != expected) {
      return Status::Internal(
          "reaches(" + std::to_string(u) + ", " + std::to_string(v) +
          ") = " + (answer.reachable ? "true" : "false") + " via " +
          ReachStageName(answer.stage) + ", reference says " +
          (expected ? "true" : "false") + " at epoch " +
          std::to_string(log_->current_epoch()));
    }
    return Status::Ok();
  }

  DynamicReachService* service() { return service_.get(); }
  MutationLog* log() { return log_.get(); }
  IndexRebuilder* rebuilder() { return rebuilder_.get(); }
  ReferenceGraph& reference() { return reference_; }
  NodeId num_nodes() const { return num_nodes_; }
  int64_t mutations() const { return mutations_; }
  // Coverage meters: how many epoch boundaries / snapshot adoptions the
  // trace actually verified (tests assert these to prove the fixture ran
  // the checks it promises).
  int64_t epochs_verified() const { return epochs_verified_; }
  int64_t adoptions_verified() const { return adoptions_verified_; }

 private:
  Status AfterMutation() {
    TCDB_RETURN_IF_ERROR(VerifyEpoch());
    if (options_.rebuild_every > 0 &&
        mutations_ % options_.rebuild_every == 0) {
      TCDB_RETURN_IF_ERROR(RebuildAndAdopt());
    }
    return Status::Ok();
  }

  static Status Wrap(const char* what, NodeId src, NodeId dst,
                     const Status& status) {
    if (status.ok()) return status;
    return Status::Internal(std::string(what) + "(" + std::to_string(src) +
                            ", " + std::to_string(dst) +
                            ") failed: " + status.ToString());
  }

  DynamicTraceOptions options_;
  NodeId num_nodes_;
  std::unique_ptr<MutationLog> log_;
  std::unique_ptr<DynamicReachService> service_;
  std::unique_ptr<IndexRebuilder> rebuilder_;
  ReferenceGraph reference_;
  Rng verify_rng_;
  int64_t mutations_ = 0;
  int64_t epochs_verified_ = 0;
  int64_t adoptions_verified_ = 0;
};

}  // namespace tcdb

#endif  // TCDB_TESTS_DYNAMIC_TRACE_H_
