// WAL-shipping replication end-to-end (ctest labels: `replica` and
// `concurrency`; check.sh reruns this binary under ThreadSanitizer):
// follower bootstrap from a shipped checkpoint, multi-segment catch-up
// over a live rotated WAL, torn-shipped-segment re-fetch, the
// epoch-staleness bound under sustained mutations, restart catch-up
// (segments-only and checkpoint-shipped), promotion, and concurrent
// follower reads racing the primary's mutation stream.

#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "dynamic/reference_graph.h"
#include "graph/generator.h"
#include "persist/durable_service.h"
#include "persist/fs.h"
#include "replica/follower.h"
#include "replica/primary.h"
#include "replica/transport.h"
#include "replica/wire.h"
#include "util/random.h"

namespace tcdb {
namespace {

constexpr std::chrono::milliseconds kWait{20000};

ArcList TestGraph(NodeId* num_nodes, uint64_t seed = 3) {
  GeneratorParams params;
  params.num_nodes = 100;
  params.avg_out_degree = 3;
  params.locality = 25;
  params.seed = seed;
  *num_nodes = params.num_nodes;
  return GenerateCyclicDigraph(params, /*num_back_arcs=*/5);
}

ReferenceGraph MirrorOf(const ArcList& arcs, NodeId n) {
  ReferenceGraph reference(n);
  for (const Arc& arc : arcs) {
    if (!reference.HasArc(arc.src, arc.dst)) {
      reference.Insert(arc.src, arc.dst);
    }
  }
  return reference;
}

std::unique_ptr<Primary> MakePrimary(MemFs* fs, const ArcList& base,
                                     NodeId n,
                                     const DurableOptions& options = {}) {
  auto db = DurableDynamicService::Create(fs, "db", base, n, options);
  EXPECT_TRUE(db.ok()) << db.status().ToString();
  if (!db.ok()) return nullptr;
  return std::make_unique<Primary>(std::move(db).value());
}

std::unique_ptr<Follower> Attach(Primary* primary, Fs* fs,
                                 const FollowerOptions& options = {},
                                 size_t pipe_capacity = 1 << 16) {
  auto [primary_end, follower_end] = MakeInProcessPipe(pipe_capacity);
  auto follower =
      Follower::Start(fs, "replica", std::move(follower_end), options);
  EXPECT_TRUE(follower.ok()) << follower.status().ToString();
  if (!follower.ok()) return nullptr;
  const Status attached = primary->AttachFollower(std::move(primary_end));
  EXPECT_TRUE(attached.ok()) << attached.ToString();
  if (!attached.ok()) return nullptr;
  return std::move(follower).value();
}

// Applies `count` toggle mutations (delete when live, insert otherwise),
// mirrored into `reference`.
void Mutate(Primary* primary, ReferenceGraph* reference, NodeId n, Rng* rng,
            int count) {
  for (int i = 0; i < count; ++i) {
    const NodeId s = static_cast<NodeId>(rng->Uniform(0, n - 1));
    const NodeId d = static_cast<NodeId>(rng->Uniform(0, n - 1));
    if (s == d) continue;
    if (reference->HasArc(s, d)) {
      ASSERT_TRUE(primary->DeleteArc(s, d).ok());
      reference->Delete(s, d);
    } else {
      ASSERT_TRUE(primary->InsertArc(s, d).ok());
      reference->Insert(s, d);
    }
  }
}

// Read barrier, then differential queries through the follower.
void ExpectFollowerMatches(Follower* follower, Primary* primary,
                           ReferenceGraph* reference, NodeId n, Rng* rng,
                           int count) {
  ASSERT_TRUE(follower->WaitCaughtUp(primary->epoch(), kWait))
      << follower->error().ToString();
  const Status refreshed = follower->RefreshSnapshot();
  ASSERT_TRUE(refreshed.ok()) << refreshed.ToString();
  EXPECT_GE(follower->Lag().served, primary->epoch());
  for (int i = 0; i < count; ++i) {
    const NodeId u = static_cast<NodeId>(rng->Uniform(0, n - 1));
    const NodeId v = static_cast<NodeId>(rng->Uniform(0, n - 1));
    auto answer = follower->Query(u, v);
    ASSERT_TRUE(answer.ok()) << answer.status().ToString();
    EXPECT_EQ(answer.value().reachable, reference->Reaches(u, v))
        << "(" << u << ", " << v << ")";
  }
}

TEST(Replica, BootstrapsFromShippedCheckpointAndFollowsLiveRecords) {
  NodeId n = 0;
  const ArcList base = TestGraph(&n);
  MemFs primary_disk;
  auto primary = MakePrimary(&primary_disk, base, n);
  ASSERT_NE(primary, nullptr);
  ReferenceGraph reference = MirrorOf(base, n);
  Rng rng(11);

  // A checkpoint truncates the WAL, so a fresh follower cannot catch up
  // from segments alone — the bootstrap must ship the image.
  Mutate(primary.get(), &reference, n, &rng, 40);
  ASSERT_TRUE(primary->Checkpoint().ok());
  Mutate(primary.get(), &reference, n, &rng, 25);

  MemFs follower_disk;
  auto follower = Attach(primary.get(), &follower_disk);
  ASSERT_NE(follower, nullptr);
  EXPECT_EQ(follower->stats().checkpoints_received, 1);
  EXPECT_EQ(follower->applied_epoch(), primary->epoch());
  ExpectFollowerMatches(follower.get(), primary.get(), &reference, n, &rng,
                        40);

  // Live records after the bootstrap flow through the same read path.
  Mutate(primary.get(), &reference, n, &rng, 50);
  ExpectFollowerMatches(follower.get(), primary.get(), &reference, n, &rng,
                        40);
  EXPECT_EQ(primary->stats().records_shipped, 50);
}

TEST(Replica, CatchesUpAcrossManyRotatedSegments) {
  NodeId n = 0;
  const ArcList base = TestGraph(&n, /*seed=*/9);
  MemFs primary_disk;
  DurableOptions small_segments;
  small_segments.wal.segment_bytes = 200;  // a handful of records each
  auto primary = MakePrimary(&primary_disk, base, n, small_segments);
  ASSERT_NE(primary, nullptr);
  ReferenceGraph reference = MirrorOf(base, n);
  Rng rng(13);
  Mutate(primary.get(), &reference, n, &rng, 60);

  MemFs follower_disk;
  auto follower = Attach(primary.get(), &follower_disk);
  ASSERT_NE(follower, nullptr);
  // The whole suffix arrived as shipped segment images, several of them.
  EXPECT_GE(follower->stats().segments_received, 3);
  EXPECT_EQ(follower->stats().records_applied, 60);
  ExpectFollowerMatches(follower.get(), primary.get(), &reference, n, &rng,
                        40);
}

TEST(Replica, RefetchesATornShippedSegment) {
  NodeId n = 0;
  const ArcList base = TestGraph(&n);
  MemFs primary_disk;
  auto primary = MakePrimary(&primary_disk, base, n);
  ASSERT_NE(primary, nullptr);
  ReferenceGraph reference = MirrorOf(base, n);
  Rng rng(17);
  Mutate(primary.get(), &reference, n, &rng, 30);

  // The first ship of the next segment loses its tail in transit; the
  // follower must detect the short image and ask again rather than
  // silently bootstrap to a truncated state.
  primary->TearNextSegmentShipForTesting(11);
  MemFs follower_disk;
  auto follower = Attach(primary.get(), &follower_disk);
  ASSERT_NE(follower, nullptr);
  EXPECT_EQ(follower->stats().segment_resends_requested, 1);
  EXPECT_EQ(primary->stats().segment_resends_served, 1);
  EXPECT_EQ(follower->applied_epoch(), primary->epoch());
  ExpectFollowerMatches(follower.get(), primary.get(), &reference, n, &rng,
                        40);
}

TEST(Replica, ServedStalenessStaysWithinTheConfiguredBound) {
  NodeId n = 0;
  const ArcList base = TestGraph(&n);
  MemFs primary_disk;
  auto primary = MakePrimary(&primary_disk, base, n);
  ASSERT_NE(primary, nullptr);
  ReferenceGraph reference = MirrorOf(base, n);
  Rng rng(19);

  constexpr size_t kPipeCapacity = 1024;
  FollowerOptions options;
  options.max_apply_ahead = 16;
  MemFs follower_disk;
  auto follower =
      Attach(primary.get(), &follower_disk, options, kPipeCapacity);
  ASSERT_NE(follower, nullptr);

  // tip - served can never exceed the synchronous-refresh bound plus
  // what the bounded pipe can hold in flight.
  const int64_t bound =
      options.max_apply_ahead +
      static_cast<int64_t>(kPipeCapacity) / kRecordFrameBytes + 2;
  for (int op = 0; op < 400; ++op) {
    Mutate(primary.get(), &reference, n, &rng, 1);
    const int64_t staleness = primary->epoch() - follower->Lag().served;
    ASSERT_LE(staleness, bound) << "op " << op;
  }
  EXPECT_GT(follower->stats().forced_refreshes, 0);
  ExpectFollowerMatches(follower.get(), primary.get(), &reference, n, &rng,
                        40);
}

TEST(Replica, RestartedFollowerCatchesUpFromSegmentsAlone) {
  NodeId n = 0;
  const ArcList base = TestGraph(&n);
  MemFs primary_disk;
  auto primary = MakePrimary(&primary_disk, base, n);
  ASSERT_NE(primary, nullptr);
  ReferenceGraph reference = MirrorOf(base, n);
  Rng rng(23);

  MemFs follower_disk;
  auto follower = Attach(primary.get(), &follower_disk);
  ASSERT_NE(follower, nullptr);
  Mutate(primary.get(), &reference, n, &rng, 30);
  ASSERT_TRUE(follower->WaitCaughtUp(primary->epoch(), kWait));
  primary->DetachAll();
  follower->WaitForStreamEnd();
  ASSERT_TRUE(follower->error().ok()) << follower->error().ToString();
  follower.reset();  // release its WAL before a second appender opens it

  // The follower missed these; its own durable state plus the primary's
  // retained segments must cover the gap with no checkpoint shipped.
  Mutate(primary.get(), &reference, n, &rng, 20);
  auto restarted = Attach(primary.get(), &follower_disk);
  ASSERT_NE(restarted, nullptr);
  EXPECT_EQ(restarted->stats().checkpoints_received, 0);
  EXPECT_GT(restarted->stats().stale_records_skipped, 0);
  EXPECT_EQ(restarted->applied_epoch(), primary->epoch());
  ExpectFollowerMatches(restarted.get(), primary.get(), &reference, n, &rng,
                        40);
}

TEST(Replica, RestartedFollowerIsReseededAfterWalTruncation) {
  NodeId n = 0;
  const ArcList base = TestGraph(&n);
  MemFs primary_disk;
  auto primary = MakePrimary(&primary_disk, base, n);
  ASSERT_NE(primary, nullptr);
  ReferenceGraph reference = MirrorOf(base, n);
  Rng rng(29);

  MemFs follower_disk;
  auto follower = Attach(primary.get(), &follower_disk);
  ASSERT_NE(follower, nullptr);
  Mutate(primary.get(), &reference, n, &rng, 20);
  ASSERT_TRUE(follower->WaitCaughtUp(primary->epoch(), kWait));
  primary->DetachAll();
  follower->WaitForStreamEnd();
  follower.reset();

  // A checkpoint truncates the WAL past the follower's position: the
  // re-attach must fall back to shipping the newer image.
  Mutate(primary.get(), &reference, n, &rng, 40);
  ASSERT_TRUE(primary->Checkpoint().ok());
  Mutate(primary.get(), &reference, n, &rng, 10);
  auto restarted = Attach(primary.get(), &follower_disk);
  ASSERT_NE(restarted, nullptr);
  EXPECT_EQ(restarted->stats().checkpoints_received, 1);
  EXPECT_EQ(restarted->applied_epoch(), primary->epoch());
  ExpectFollowerMatches(restarted.get(), primary.get(), &reference, n, &rng,
                        40);
}

TEST(Replica, PromotedFollowerServesTheExactStateAndAcceptsWrites) {
  NodeId n = 0;
  const ArcList base = TestGraph(&n);
  MemFs primary_disk;
  auto primary = MakePrimary(&primary_disk, base, n);
  ASSERT_NE(primary, nullptr);
  ReferenceGraph reference = MirrorOf(base, n);
  Rng rng(31);

  MemFs follower_disk;
  FollowerOptions options;
  options.checkpoint_every = 16;  // promoted stack inherits local cuts
  auto follower = Attach(primary.get(), &follower_disk, options);
  ASSERT_NE(follower, nullptr);
  Mutate(primary.get(), &reference, n, &rng, 50);
  const auto last_epoch = primary->epoch();

  // Premature promotion is refused while the stream is live.
  auto premature = follower->Promote();
  ASSERT_FALSE(premature.ok());
  EXPECT_EQ(premature.status().code(), StatusCode::kFailedPrecondition);

  // "Kill" the primary.
  ASSERT_TRUE(follower->WaitCaughtUp(last_epoch, kWait));
  primary.reset();
  follower->WaitForStreamEnd();
  ASSERT_TRUE(follower->error().ok()) << follower->error().ToString();
  EXPECT_EQ(follower->applied_epoch(), last_epoch);
  EXPECT_GT(follower->stats().local_checkpoints, 0);

  auto promoted = follower->Promote();
  ASSERT_TRUE(promoted.ok()) << promoted.status().ToString();
  EXPECT_EQ(promoted.value()->epoch(), last_epoch);
  // The husk stops serving; the promoted primary serves and writes.
  EXPECT_EQ(follower->Query(0, 1).status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(follower->RefreshSnapshot().code(),
            StatusCode::kFailedPrecondition);
  for (int i = 0; i < 60; ++i) {
    const NodeId u = static_cast<NodeId>(rng.Uniform(0, n - 1));
    const NodeId v = static_cast<NodeId>(rng.Uniform(0, n - 1));
    auto answer = promoted.value()->Query(u, v);
    ASSERT_TRUE(answer.ok());
    EXPECT_EQ(answer.value().reachable, reference.Reaches(u, v));
  }
  Rng post(37);
  Mutate(promoted.value().get(), &reference, n, &post, 30);
  EXPECT_EQ(promoted.value()->epoch(), last_epoch + 30);
  ASSERT_TRUE(promoted.value()->Checkpoint().ok());
}

TEST(Replica, FollowersServeConcurrentlyWithTheMutationStream) {
  NodeId n = 0;
  const ArcList base = TestGraph(&n);
  MemFs primary_disk;
  auto primary = MakePrimary(&primary_disk, base, n);
  ASSERT_NE(primary, nullptr);
  ReferenceGraph reference = MirrorOf(base, n);
  Rng rng(41);

  MemFs disk_a;
  MemFs disk_b;
  FollowerOptions options;
  options.max_apply_ahead = 32;
  options.server.num_shards = 2;
  auto follower_a = Attach(primary.get(), &disk_a, options);
  auto follower_b = Attach(primary.get(), &disk_b, options, /*pipe=*/2048);
  ASSERT_NE(follower_a, nullptr);
  ASSERT_NE(follower_b, nullptr);

  // Reader threads hammer both followers while the owner thread mutates
  // and heartbeats — TSan's view of the epoch-consistent swap discipline.
  std::vector<std::thread> clients;
  for (Follower* follower : {follower_a.get(), follower_b.get()}) {
    clients.emplace_back([follower, n] {
      Rng client_rng(reinterpret_cast<uintptr_t>(follower) | 1);
      std::vector<std::pair<NodeId, NodeId>> batch(16);
      for (int round = 0; round < 60; ++round) {
        for (auto& pair : batch) {
          pair.first = static_cast<NodeId>(client_rng.Uniform(0, n - 1));
          pair.second = static_cast<NodeId>(client_rng.Uniform(0, n - 1));
        }
        auto answers = follower->QueryBatch(batch);
        ASSERT_TRUE(answers.ok()) << answers.status().ToString();
        ASSERT_EQ(answers.value().size(), batch.size());
      }
    });
  }
  for (int op = 0; op < 200; ++op) {
    Mutate(primary.get(), &reference, n, &rng, 1);
    if (op % 16 == 0) ASSERT_TRUE(primary->Heartbeat().ok());
  }
  for (std::thread& client : clients) client.join();

  ExpectFollowerMatches(follower_a.get(), primary.get(), &reference, n, &rng,
                        30);
  ExpectFollowerMatches(follower_b.get(), primary.get(), &reference, n, &rng,
                        30);
  EXPECT_EQ(primary->num_followers(), 2);
}

}  // namespace
}  // namespace tcdb
