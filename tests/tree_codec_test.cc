// FlatTree and encode/decode tests, including round-trip property tests
// over random trees (the negated-parent on-disk format of SPN/JKB).

#include <gtest/gtest.h>

#include <algorithm>

#include "succ/tree_codec.h"
#include "util/random.h"

namespace tcdb {
namespace {

TEST(FlatTreeTest, RootOnly) {
  FlatTree tree(5);
  EXPECT_EQ(tree.root(), 5);
  EXPECT_EQ(tree.size(), 1);
  EXPECT_TRUE(tree.Contains(5));
  EXPECT_FALSE(tree.Contains(4));
  EXPECT_EQ(tree.IndexOf(5), 0);
  EXPECT_EQ(tree.IndexOf(4), -1);
  EXPECT_EQ(tree.NumChildren(0), 0);
}

TEST(FlatTreeTest, AddChildrenPreservesOrder) {
  FlatTree tree(0);
  const int32_t a = tree.AddChild(0, 3);
  const int32_t b = tree.AddChild(0, 1);
  tree.AddChild(a, 7);
  EXPECT_EQ(tree.size(), 4);
  EXPECT_EQ(tree.ChildrenOf(0), (std::vector<int32_t>{a, b}));
  EXPECT_EQ(tree.ParentOf(a), 0);
  EXPECT_EQ(tree.NumChildren(a), 1);
  EXPECT_EQ(tree.NodeAt(tree.ChildrenOf(a)[0]), 7);
}

TEST(TreeCodecTest, SingleNodeEncoding) {
  FlatTree tree(0);  // node id 0 exercises the +1 bias
  const std::vector<int32_t> encoded = EncodeTree(tree);
  EXPECT_EQ(encoded, std::vector<int32_t>{1});
  auto decoded = DecodeTree(encoded);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().root(), 0);
  EXPECT_EQ(decoded.value().size(), 1);
}

TEST(TreeCodecTest, PaperFormatParentsNegated) {
  // Root 4 with children 2 and 9; 2 has child 0.
  FlatTree tree(4);
  const int32_t two = tree.AddChild(0, 2);
  tree.AddChild(0, 9);
  tree.AddChild(two, 0);
  const std::vector<int32_t> encoded = EncodeTree(tree);
  // BFS: -(4+1), 2+1, 9+1, -(2+1), 0+1.
  EXPECT_EQ(encoded, (std::vector<int32_t>{-5, 3, 10, -3, 1}));
}

TEST(TreeCodecTest, DecodeRejectsMalformedInput) {
  EXPECT_FALSE(DecodeTree(std::vector<int32_t>{}).ok());
  // Trailing data after a single-node encoding.
  EXPECT_FALSE(DecodeTree(std::vector<int32_t>{1, 2}).ok());
  // Parent marker for a node never introduced.
  EXPECT_FALSE(DecodeTree(std::vector<int32_t>{-1, 2, -9, 4}).ok());
  // Duplicate node.
  EXPECT_FALSE(DecodeTree(std::vector<int32_t>{-1, 2, 2}).ok());
  // Zero entry is invalid (ids are biased by +1).
  EXPECT_FALSE(DecodeTree(std::vector<int32_t>{-1, 0}).ok());
}

FlatTree RandomTree(Rng* rng, int32_t num_nodes) {
  FlatTree tree(0);
  for (NodeId node = 1; node < num_nodes; ++node) {
    const int32_t parent =
        static_cast<int32_t>(rng->Uniform(0, tree.size() - 1));
    tree.AddChild(parent, node);
  }
  return tree;
}

bool SameTree(const FlatTree& a, const FlatTree& b) {
  if (a.size() != b.size() || a.root() != b.root()) return false;
  for (int32_t i = 0; i < a.size(); ++i) {
    const NodeId node = a.NodeAt(i);
    const int32_t j = b.IndexOf(node);
    if (j == -1) return false;
    // Same parent node id.
    const int32_t pa = a.ParentOf(i);
    const int32_t pb = b.ParentOf(j);
    if ((pa == -1) != (pb == -1)) return false;
    if (pa != -1 && a.NodeAt(pa) != b.NodeAt(pb)) return false;
    // Same child order.
    std::vector<NodeId> ca, cb;
    for (int32_t c : a.ChildrenOf(i)) ca.push_back(a.NodeAt(c));
    for (int32_t c : b.ChildrenOf(j)) cb.push_back(b.NodeAt(c));
    if (ca != cb) return false;
  }
  return true;
}

class TreeCodecPropertyTest : public testing::TestWithParam<int32_t> {};

TEST_P(TreeCodecPropertyTest, RoundTripRandomTrees) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 50; ++trial) {
    const int32_t size = static_cast<int32_t>(rng.Uniform(1, 200));
    const FlatTree tree = RandomTree(&rng, size);
    const std::vector<int32_t> encoded = EncodeTree(tree);
    // Encoding size: every node appears once as a child (except the root),
    // plus one negated marker per internal node.
    int32_t internal = 0;
    for (int32_t i = 0; i < tree.size(); ++i) {
      internal += tree.NumChildren(i) > 0 ? 1 : 0;
    }
    if (tree.size() == 1) {
      EXPECT_EQ(encoded.size(), 1u);
    } else {
      EXPECT_EQ(static_cast<int32_t>(encoded.size()),
                tree.size() - 1 + internal);
    }
    auto decoded = DecodeTree(encoded);
    ASSERT_TRUE(decoded.ok());
    EXPECT_TRUE(SameTree(tree, decoded.value())) << "seed " << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TreeCodecPropertyTest,
                         testing::Range<int32_t>(1, 6));

}  // namespace
}  // namespace tcdb
