// Relation storage tests: build, lookup via the clustered index, scans,
// dual representation, and I/O accounting.

#include <gtest/gtest.h>

#include <algorithm>

#include "graph/generator.h"
#include "relation/relation_file.h"

namespace tcdb {
namespace {

class RelationTest : public testing::Test {
 protected:
  RelationTest()
      : data_(pager_.CreateFile("rel.dat")),
        index_(pager_.CreateFile("rel.idx")),
        buffers_(&pager_, 16, PagePolicy::kLru) {}

  void Build(const ArcList& arcs) {
    ASSERT_TRUE(
        RelationFile::Build(&buffers_, data_, index_, arcs, &relation_).ok());
  }

  Pager pager_;
  FileId data_;
  FileId index_;
  BufferManager buffers_;
  std::unique_ptr<RelationFile> relation_;
};

TEST_F(RelationTest, RejectsUnsortedInput) {
  std::unique_ptr<RelationFile> relation;
  EXPECT_FALSE(RelationFile::Build(&buffers_, data_, index_,
                                   {{2, 1}, {1, 1}}, &relation)
                   .ok());
  EXPECT_FALSE(RelationFile::Build(&buffers_, data_, index_,
                                   {{1, 1}, {1, 1}}, &relation)
                   .ok());
}

TEST_F(RelationTest, EmptyRelation) {
  Build({});
  EXPECT_EQ(relation_->num_tuples(), 0);
  EXPECT_EQ(relation_->num_data_pages(), 0u);
  std::vector<int32_t> out;
  ASSERT_TRUE(relation_->LookupSrc(5, &out).ok());
  EXPECT_TRUE(out.empty());
}

TEST_F(RelationTest, PackingIs256TuplesPerPage) {
  ArcList arcs;
  for (int32_t i = 0; i < 600; ++i) arcs.push_back(Arc{i, i + 1});
  std::sort(arcs.begin(), arcs.end());
  Build(arcs);
  EXPECT_EQ(relation_->num_data_pages(), 3u);  // ceil(600 / 256)
}

TEST_F(RelationTest, LookupFindsAllSuccessors) {
  // Node 7 has successors 10..19; nodes around it have a few arcs.
  ArcList arcs;
  for (int32_t d = 10; d < 20; ++d) arcs.push_back(Arc{7, d});
  arcs.push_back(Arc{5, 6});
  arcs.push_back(Arc{9, 1});
  std::sort(arcs.begin(), arcs.end());
  Build(arcs);
  std::vector<int32_t> out;
  ASSERT_TRUE(relation_->LookupSrc(7, &out).ok());
  std::vector<int32_t> expected;
  for (int32_t d = 10; d < 20; ++d) expected.push_back(d);
  EXPECT_EQ(out, expected);
  out.clear();
  ASSERT_TRUE(relation_->LookupSrc(6, &out).ok());
  EXPECT_TRUE(out.empty());
}

TEST_F(RelationTest, LookupSpansPageBoundary) {
  // One src whose tuples straddle several pages.
  ArcList arcs;
  arcs.push_back(Arc{0, 1});
  for (int32_t d = 0; d < 700; ++d) arcs.push_back(Arc{5, d});
  arcs.push_back(Arc{9, 3});
  std::sort(arcs.begin(), arcs.end());
  Build(arcs);
  std::vector<int32_t> out;
  ASSERT_TRUE(relation_->LookupSrc(5, &out).ok());
  EXPECT_EQ(out.size(), 700u);
  EXPECT_EQ(out.front(), 0);
  EXPECT_EQ(out.back(), 699);
}

TEST_F(RelationTest, ScanVisitsEverythingInOrder) {
  const ArcList arcs = GenerateDag({100, 4, 30, 5});
  Build(arcs);
  ArcList seen;
  ASSERT_TRUE(relation_->Scan([&](const Arc& arc) { seen.push_back(arc); }).ok());
  EXPECT_EQ(seen, arcs);
}

TEST_F(RelationTest, LookupMatchesGeneratorAdjacency) {
  const GeneratorParams params{300, 5, 60, 42};
  const ArcList arcs = GenerateDag(params);
  const Digraph graph(params.num_nodes, arcs);
  Build(arcs);
  for (NodeId v = 0; v < params.num_nodes; ++v) {
    std::vector<int32_t> out;
    ASSERT_TRUE(relation_->LookupSrc(v, &out).ok());
    const auto expected = graph.Successors(v);
    ASSERT_EQ(out.size(), expected.size()) << v;
    EXPECT_TRUE(std::equal(out.begin(), out.end(), expected.begin()));
  }
}

TEST_F(RelationTest, ReverseArcsBuildsInverseRelation) {
  const ArcList arcs = GenerateDag({200, 3, 50, 9});
  const ArcList inverse = ReverseArcs(arcs);
  ASSERT_EQ(inverse.size(), arcs.size());
  EXPECT_TRUE(std::is_sorted(inverse.begin(), inverse.end()));
  // Every (s, d) appears as (d, s).
  for (const Arc& arc : arcs) {
    EXPECT_TRUE(std::binary_search(inverse.begin(), inverse.end(),
                                   Arc{arc.dst, arc.src}));
  }
  // Inverse relation answers predecessor queries.
  Build(inverse);
  const Digraph graph(200, arcs);
  const Digraph reversed = graph.Reversed();
  for (NodeId v = 0; v < 200; v += 17) {
    std::vector<int32_t> preds;
    ASSERT_TRUE(relation_->LookupSrc(v, &preds).ok());
    const auto expected = reversed.Successors(v);
    ASSERT_EQ(preds.size(), expected.size());
    EXPECT_TRUE(std::equal(preds.begin(), preds.end(), expected.begin()));
  }
}

TEST_F(RelationTest, ColdLookupCostsIndexDescentPlusData) {
  ArcList arcs;
  for (int32_t i = 0; i < 1000; ++i) arcs.push_back(Arc{i, i + 1});
  std::sort(arcs.begin(), arcs.end());
  Build(arcs);
  buffers_.FlushAll();
  buffers_.DiscardAll();
  pager_.ResetStats();
  std::vector<int32_t> out;
  ASSERT_TRUE(relation_->LookupSrc(500, &out).ok());
  ASSERT_EQ(out.size(), 1u);
  // Index height pages + 1 data page (plus possibly the next data page if
  // the match ends a page). 1000 keys fit in one leaf + ... height is 2.
  EXPECT_EQ(pager_.stats().ForFile(index_).reads, relation_->index().height());
  EXPECT_GE(pager_.stats().ForFile(data_).reads, 1u);
  EXPECT_LE(pager_.stats().ForFile(data_).reads, 2u);
}

}  // namespace
}  // namespace tcdb
