// Tests of the trace-driven workload subsystem (workload/traffic_model.h):
// deterministic replay, kind name round-trips, Zipf source skew, hot-pair
// bursts, the positive-bias dial, the adversarial miner's residue
// targeting, the trace file format, and the MakeModelWorkload guards.

#include "workload/traffic_model.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "graph/algorithms.h"
#include "graph/digraph.h"
#include "graph/generator.h"
#include "reach/load_driver.h"

namespace tcdb {
namespace {

Digraph MakeTestDag(NodeId n = 500, int32_t degree = 5, uint64_t seed = 9) {
  GeneratorParams params;
  params.num_nodes = n;
  params.avg_out_degree = degree;
  params.locality = n / 10;
  params.seed = seed;
  return Digraph(n, GenerateDag(params));
}

TEST(WorkloadKindTest, NamesRoundTrip) {
  const WorkloadKind kinds[] = {WorkloadKind::kUniform, WorkloadKind::kZipf,
                                WorkloadKind::kHotPair,
                                WorkloadKind::kAdversarial,
                                WorkloadKind::kMixed};
  for (const WorkloadKind kind : kinds) {
    const char* name = WorkloadKindName(kind);
    ASSERT_NE(name, nullptr);
    WorkloadKind parsed;
    ASSERT_TRUE(ParseWorkloadKind(name, &parsed)) << name;
    EXPECT_EQ(parsed, kind) << name;
  }
  WorkloadKind parsed;
  EXPECT_FALSE(ParseWorkloadKind("definitely-not-a-workload", &parsed));
  EXPECT_FALSE(ParseWorkloadKind("", &parsed));
}

// Same (graph, options, seed) triple => bit-identical stream. This is
// the replayability contract every bench line and trace file rests on.
TEST(TrafficModelTest, DeterministicReplay) {
  const Digraph graph = MakeTestDag();
  for (const WorkloadKind kind :
       {WorkloadKind::kUniform, WorkloadKind::kZipf, WorkloadKind::kHotPair,
        WorkloadKind::kMixed}) {
    TrafficModelOptions options;
    options.kind = kind;
    options.seed = 77;
    TrafficModel a(graph, options);
    TrafficModel b(graph, options);
    const std::vector<std::pair<NodeId, NodeId>> stream = a.Take(2000);
    EXPECT_EQ(stream, b.Take(2000)) << WorkloadKindName(kind);

    options.seed = 78;
    EXPECT_NE(stream, TrafficModel(graph, options).Take(2000))
        << "different seed should move the stream for "
        << WorkloadKindName(kind);
  }
}

// Zipf sources are heavy-headed: the most popular source takes a share
// orders of magnitude above the uniform 1/n.
TEST(TrafficModelTest, ZipfSourceSkew) {
  const Digraph graph = MakeTestDag();
  TrafficModelOptions options;
  options.kind = WorkloadKind::kZipf;
  options.seed = 5;
  options.zipf_s = 1.1;
  TrafficModel model(graph, options);
  std::map<NodeId, int64_t> counts;
  const int64_t total = 20000;
  for (const auto& [src, dst] : model.Take(total)) counts[src] += 1;
  int64_t top = 0;
  for (const auto& [node, count] : counts) top = std::max(top, count);
  // Uniform expectation is total/n = 40; the Zipf head should dominate.
  EXPECT_GT(top, total / 20) << "top source share below 5%";
}

// Hot-pair mixes replay pairs in bursts: the stream must contain
// back-to-back repeats and some pair far above its uniform frequency.
TEST(TrafficModelTest, HotPairBurstsRepeat) {
  const Digraph graph = MakeTestDag();
  TrafficModelOptions options;
  options.kind = WorkloadKind::kHotPair;
  options.seed = 11;
  options.hot_fraction = 0.5;
  TrafficModel model(graph, options);
  const std::vector<std::pair<NodeId, NodeId>> pairs = model.Take(5000);
  int64_t consecutive_repeats = 0;
  std::map<std::pair<NodeId, NodeId>, int64_t> counts;
  for (size_t i = 0; i < pairs.size(); ++i) {
    counts[pairs[i]] += 1;
    if (i > 0 && pairs[i] == pairs[i - 1]) ++consecutive_repeats;
  }
  int64_t top = 0;
  for (const auto& [pair, count] : counts) top = std::max(top, count);
  EXPECT_GT(consecutive_repeats, 100) << "no temporal locality";
  EXPECT_GT(top, 50) << "no hot pair emerged";
}

// positive_bias = 1 forces every destination onto a forward walk from
// its source, so every emitted pair is reachable (reflexively when the
// walk starts at a sink).
TEST(TrafficModelTest, FullPositiveBiasYieldsReachablePairs) {
  const Digraph graph = MakeTestDag(300);
  const std::vector<std::vector<NodeId>> closure = ReferenceClosure(graph);
  TrafficModelOptions options;
  options.kind = WorkloadKind::kZipf;
  options.seed = 3;
  options.positive_bias = 1.0;
  TrafficModel model(graph, options);
  for (const auto& [src, dst] : model.Take(3000)) {
    const bool reachable =
        src == dst || std::binary_search(closure[src].begin(),
                                         closure[src].end(), dst);
    ASSERT_TRUE(reachable) << src << " -> " << dst;
  }
}

// The miner concentrates the stream on pairs the probe cannot decide.
TEST(TrafficModelTest, AdversarialMinerTargetsResidue) {
  const Digraph graph = MakeTestDag();
  // Arbitrary cheap probe: "decided" unless src is a multiple of 5 —
  // roughly 1/5 of the base mix is residue, so 64 attempts find one with
  // overwhelming probability.
  const WorkloadDecideProbe probe = [](NodeId u, NodeId v) {
    (void)v;
    return u % 5 != 0;
  };
  TrafficModelOptions options;
  options.kind = WorkloadKind::kAdversarial;
  options.seed = 21;
  TrafficModel model(graph, options, probe);
  const std::vector<std::pair<NodeId, NodeId>> pairs = model.Take(4000);
  EXPECT_GT(model.mined_total(), 0);
  EXPECT_GT(static_cast<double>(model.mined_undecided()) /
                static_cast<double>(model.mined_total()),
            0.95);
  int64_t undecided = 0;
  for (const auto& [src, dst] : pairs) {
    if (!probe(src, dst)) ++undecided;
  }
  // adversarial_fill defaults to 0.9; the rest of the stream is base mix.
  EXPECT_GT(static_cast<double>(undecided) /
                static_cast<double>(pairs.size()),
            0.8);
}

// Without a probe the miner cannot filter; the stream must still be
// well-formed and deterministic rather than erroring or spinning.
TEST(TrafficModelTest, AdversarialWithoutProbeStillStreams) {
  const Digraph graph = MakeTestDag(100);
  TrafficModelOptions options;
  options.kind = WorkloadKind::kAdversarial;
  options.seed = 2;
  TrafficModel a(graph, options);
  TrafficModel b(graph, options);
  const std::vector<std::pair<NodeId, NodeId>> pairs = a.Take(500);
  EXPECT_EQ(pairs.size(), 500u);
  EXPECT_EQ(pairs, b.Take(500));
}

TEST(WorkloadTraceTest, RoundTrip) {
  WorkloadTrace trace;
  trace.kind = WorkloadKind::kHotPair;
  trace.seed = 314159;
  trace.pairs = {{0, 1}, {7, 7}, {123, 4}, {2, 99}};
  std::stringstream stream;
  WriteTrace(stream, trace);
  auto read = ReadTrace(stream);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_EQ(read.value().kind, trace.kind);
  EXPECT_EQ(read.value().seed, trace.seed);
  EXPECT_EQ(read.value().pairs, trace.pairs);
}

TEST(WorkloadTraceTest, GeneratedMixSurvivesTheFormat) {
  const Digraph graph = MakeTestDag(200);
  TrafficModelOptions options;
  options.kind = WorkloadKind::kMixed;
  options.seed = 17;
  WorkloadTrace trace;
  trace.kind = options.kind;
  trace.seed = options.seed;
  trace.pairs = TrafficModel(graph, options).Take(1000);
  std::stringstream stream;
  WriteTrace(stream, trace);
  auto read = ReadTrace(stream);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_EQ(read.value().pairs, trace.pairs);
}

TEST(WorkloadTraceTest, RejectsMalformedInput) {
  const auto expect_invalid = [](const std::string& text) {
    std::stringstream stream(text);
    auto read = ReadTrace(stream);
    EXPECT_FALSE(read.ok()) << "accepted: " << text;
  };
  expect_invalid("");
  expect_invalid("not a trace\n1 2\n");
  expect_invalid("# tcdb-trace v2 kind=uniform seed=1 count=1\n1 2\n");
  expect_invalid("# tcdb-trace v1 kind=nope seed=1 count=1\n1 2\n");
  // Count says two pairs, body has one.
  expect_invalid("# tcdb-trace v1 kind=uniform seed=1 count=2\n1 2\n");
  // Non-numeric pair line.
  expect_invalid("# tcdb-trace v1 kind=uniform seed=1 count=1\nx y\n");
}

TEST(MakeModelWorkloadTest, GuardsDegenerateInputs) {
  TrafficModelOptions options;
  EXPECT_TRUE(MakeModelWorkload(Digraph(), options, 100).empty());
  const Digraph graph = MakeTestDag(50);
  EXPECT_TRUE(MakeModelWorkload(graph, options, 0).empty());
  EXPECT_TRUE(MakeModelWorkload(graph, options, -5).empty());
  EXPECT_EQ(MakeModelWorkload(graph, options, 64).size(), 64u);
}

}  // namespace
}  // namespace tcdb
