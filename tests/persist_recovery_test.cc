// Unit and fault-injection tests of the durability stack: codec/CRC
// framing, fixed-width WAL entry encoding, segment rotation and torn-tail
// repair, checkpoint atomicity (write-temp/fsync/rename) with damaged-file
// fallback, and full DurableDynamicService kill-and-recover cycles —
// including the crash window between a checkpoint's rename and the WAL
// truncation, and double-recovery idempotence.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "dynamic/mutation_log.h"
#include "graph/generator.h"
#include "persist/checkpoint.h"
#include "persist/crash_harness.h"
#include "persist/durable_service.h"
#include "persist/fault_fs.h"
#include "persist/file_page_device.h"
#include "persist/fs.h"
#include "persist/wal.h"
#include "storage/pager.h"
#include "util/codec.h"
#include "util/crc32.h"
#include "util/random.h"

namespace tcdb {
namespace {

using Entry = MutationLog::Entry;

// --- filesystem helpers ---------------------------------------------------

std::string ReadAll(Fs* fs, const std::string& path) {
  auto file = fs->Open(path, /*create=*/false);
  EXPECT_TRUE(file.ok()) << path << ": " << file.status().ToString();
  auto size = file.value()->Size();
  EXPECT_TRUE(size.ok());
  std::string bytes(static_cast<size_t>(size.value()), '\0');
  size_t bytes_read = 0;
  EXPECT_TRUE(
      file.value()->ReadAt(0, bytes.data(), bytes.size(), &bytes_read).ok());
  EXPECT_EQ(bytes_read, bytes.size());
  return bytes;
}

void WriteAll(Fs* fs, const std::string& path, const std::string& bytes) {
  auto file = fs->Open(path, /*create=*/true);
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE(file.value()->Truncate(0).ok());
  ASSERT_TRUE(file.value()->WriteAt(0, bytes.data(), bytes.size()).ok());
}

void TruncateTo(Fs* fs, const std::string& path, int64_t size) {
  auto file = fs->Open(path, /*create=*/false);
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE(file.value()->Truncate(size).ok());
}

void FlipByte(Fs* fs, const std::string& path, int64_t offset) {
  auto file = fs->Open(path, /*create=*/false);
  ASSERT_TRUE(file.ok());
  uint8_t b = 0;
  size_t bytes_read = 0;
  ASSERT_TRUE(file.value()->ReadAt(offset, &b, 1, &bytes_read).ok());
  ASSERT_EQ(bytes_read, 1u);
  b ^= 0x5A;
  ASSERT_TRUE(file.value()->WriteAt(offset, &b, 1).ok());
}

// --- codec / crc ----------------------------------------------------------

TEST(Codec, RoundTripsFixedWidthValues) {
  std::string buf;
  codec::PutU8(&buf, 0xAB);
  codec::PutU32(&buf, 0xDEADBEEFu);
  codec::PutU64(&buf, 0x0123456789ABCDEFull);
  codec::PutI32(&buf, -42);
  codec::PutI64(&buf, -1'000'000'000'000);
  EXPECT_EQ(buf.size(), 1u + 4 + 8 + 4 + 8);
  // Little-endian on any host: the first u32 byte is the low byte.
  EXPECT_EQ(static_cast<uint8_t>(buf[1]), 0xEF);

  codec::Reader reader(buf.data(), buf.size());
  uint8_t u8 = 0;
  uint32_t u32 = 0;
  uint64_t u64 = 0;
  int32_t i32 = 0;
  int64_t i64 = 0;
  EXPECT_TRUE(reader.ReadU8(&u8));
  EXPECT_TRUE(reader.ReadU32(&u32));
  EXPECT_TRUE(reader.ReadU64(&u64));
  EXPECT_TRUE(reader.ReadI32(&i32));
  EXPECT_TRUE(reader.ReadI64(&i64));
  EXPECT_EQ(u8, 0xAB);
  EXPECT_EQ(u32, 0xDEADBEEFu);
  EXPECT_EQ(u64, 0x0123456789ABCDEFull);
  EXPECT_EQ(i32, -42);
  EXPECT_EQ(i64, -1'000'000'000'000);
  EXPECT_EQ(reader.remaining(), 0u);
  EXPECT_FALSE(reader.failed());
}

TEST(Codec, ReaderFailureIsSticky) {
  std::string buf;
  codec::PutU32(&buf, 7);
  codec::Reader reader(buf.data(), buf.size());
  uint64_t u64 = 0;
  EXPECT_FALSE(reader.ReadU64(&u64));  // only 4 bytes present
  uint32_t u32 = 0;
  EXPECT_FALSE(reader.ReadU32(&u32));  // sticky: the 4 bytes stay unread
  EXPECT_TRUE(reader.failed());
}

TEST(Crc32, MatchesKnownVectorAndExtends) {
  // The IEEE 802.3 check value for "123456789".
  const std::string check = "123456789";
  EXPECT_EQ(Crc32(check.data(), check.size()), 0xCBF43926u);
  EXPECT_EQ(Crc32(nullptr, 0), 0u);
  const uint32_t split = Crc32Extend(Crc32(check.data(), 4),
                                     check.data() + 4, check.size() - 4);
  EXPECT_EQ(split, 0xCBF43926u);
}

// --- WAL entry encoding (fixed-width, endian-safe) ------------------------

TEST(EntryCodec, RoundTripsAndIsFixedWidth) {
  const std::vector<Entry> entries = {
      {{0, 1}, true},
      {{1'000'000, 2'000'000}, false},
      {{7, 7}, true},  // encoding does not validate graph rules
  };
  for (const Entry& entry : entries) {
    std::string buf;
    MutationLog::EncodeEntry(entry, &buf);
    ASSERT_EQ(buf.size(), MutationLog::kEncodedEntryBytes);
    const auto decoded = MutationLog::DecodeEntry(
        {reinterpret_cast<const uint8_t*>(buf.data()), buf.size()});
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded.value(), entry);
  }
  // Byte layout is pinned: op, then src LE, then dst LE.
  std::string buf;
  MutationLog::EncodeEntry({{0x01020304, 0x0A0B0C0D}, true}, &buf);
  const uint8_t expected[9] = {1, 0x04, 0x03, 0x02, 0x01,
                               0x0D, 0x0C, 0x0B, 0x0A};
  EXPECT_EQ(0, std::memcmp(buf.data(), expected, 9));
}

TEST(EntryCodec, RejectsDamagedEncodings) {
  std::string buf;
  MutationLog::EncodeEntry({{3, 4}, true}, &buf);
  const auto* bytes = reinterpret_cast<const uint8_t*>(buf.data());

  EXPECT_EQ(MutationLog::DecodeEntry({bytes, 8}).status().code(),
            StatusCode::kCorruption);  // short
  std::string bad_op = buf;
  bad_op[0] = 2;
  EXPECT_EQ(MutationLog::DecodeEntry(
                {reinterpret_cast<const uint8_t*>(bad_op.data()), 9})
                .status()
                .code(),
            StatusCode::kCorruption);
  std::string negative = buf;
  negative[4] = static_cast<char>(0x80);  // src sign bit
  EXPECT_EQ(MutationLog::DecodeEntry(
                {reinterpret_cast<const uint8_t*>(negative.data()), 9})
                .status()
                .code(),
            StatusCode::kCorruption);
}

// --- MutationLog base epochs ----------------------------------------------

TEST(MutationLogEpochs, ContinueFromBaseEpoch) {
  const ArcList base = {{0, 1}, {1, 2}};
  MutationLogOptions options;
  options.base_epoch = 41;
  auto log = MutationLog::Open(base, 4, options);
  ASSERT_TRUE(log.ok());
  EXPECT_EQ(log.value()->current_epoch(), 41);
  auto epoch = log.value()->InsertArc(2, 3);
  ASSERT_TRUE(epoch.ok());
  EXPECT_EQ(epoch.value(), 42);
  EXPECT_EQ(log.value()->current_epoch(), 42);
}

// --- WAL ------------------------------------------------------------------

TEST(Wal, SegmentNamesRoundTrip) {
  const std::string name = Wal::SegmentName(42);
  EXPECT_EQ(name, "wal-00000000000000000042.log");
  int64_t epoch = 0;
  EXPECT_TRUE(Wal::ParseSegmentName(name, &epoch));
  EXPECT_EQ(epoch, 42);
  EXPECT_FALSE(Wal::ParseSegmentName("checkpoint.tmp", &epoch));
  EXPECT_FALSE(Wal::ParseSegmentName("wal-abc.log", &epoch));
  EXPECT_FALSE(Wal::ParseSegmentName("wal-0000000000000000004.log", &epoch));
}

TEST(Wal, AppendReopenReplays) {
  MemFs fs;
  ASSERT_TRUE(fs.MakeDir("wal").ok());
  {
    auto wal = Wal::Open(&fs, "wal");
    ASSERT_TRUE(wal.ok());
    EXPECT_TRUE(wal.value()->recovered_records().empty());
    ASSERT_TRUE(wal.value()->Append(1, {{0, 1}, true}).ok());
    ASSERT_TRUE(wal.value()->Append(2, {{1, 2}, true}).ok());
    ASSERT_TRUE(wal.value()->Append(3, {{0, 1}, false}).ok());
  }
  auto wal = Wal::Open(&fs, "wal");
  ASSERT_TRUE(wal.ok());
  const auto& records = wal.value()->recovered_records();
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0].epoch, 1);
  EXPECT_EQ(records[0].entry, (Entry{{0, 1}, true}));
  EXPECT_EQ(records[2].epoch, 3);
  EXPECT_EQ(records[2].entry, (Entry{{0, 1}, false}));
  EXPECT_EQ(wal.value()->torn_bytes_dropped(), 0);
  // Appends continue past the recovered tail.
  ASSERT_TRUE(wal.value()->Append(4, {{2, 3}, true}).ok());
}

TEST(Wal, RotationSplitsSegmentsAndTruncateDropsCoveredOnes) {
  MemFs fs;
  ASSERT_TRUE(fs.MakeDir("wal").ok());
  auto wal = Wal::Open(&fs, "wal");
  ASSERT_TRUE(wal.ok());
  ASSERT_TRUE(wal.value()->Append(1, {{0, 1}, true}).ok());
  ASSERT_TRUE(wal.value()->Append(2, {{1, 2}, true}).ok());
  ASSERT_TRUE(wal.value()->Rotate(3).ok());
  ASSERT_TRUE(wal.value()->Append(3, {{2, 3}, true}).ok());
  ASSERT_TRUE(wal.value()->Rotate(4).ok());

  auto names = fs.List("wal");
  ASSERT_TRUE(names.ok());
  EXPECT_EQ(names.value(),
            (std::vector<std::string>{Wal::SegmentName(1), Wal::SegmentName(3),
                                      Wal::SegmentName(4)}));

  // Everything <= 2 lives wholly in the first segment; drop it.
  ASSERT_TRUE(wal.value()->TruncateThrough(2).ok());
  names = fs.List("wal");
  ASSERT_TRUE(names.ok());
  EXPECT_EQ(names.value(), (std::vector<std::string>{Wal::SegmentName(3),
                                                     Wal::SegmentName(4)}));

  // The survivors replay exactly the uncovered suffix.
  auto reopened = Wal::Open(&fs, "wal");
  ASSERT_TRUE(reopened.ok());
  ASSERT_EQ(reopened.value()->recovered_records().size(), 1u);
  EXPECT_EQ(reopened.value()->recovered_records()[0].epoch, 3);
}

TEST(Wal, TornFinalRecordIsRepaired) {
  MemFs fs;
  ASSERT_TRUE(fs.MakeDir("wal").ok());
  int64_t full_size = 0;
  {
    auto wal = Wal::Open(&fs, "wal");
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE(wal.value()->Append(1, {{0, 1}, true}).ok());
    ASSERT_TRUE(wal.value()->Append(2, {{1, 2}, true}).ok());
    full_size = wal.value()->bytes_appended() + 16;  // records + header
  }
  const std::string path = JoinPath("wal", Wal::SegmentName(1));
  TruncateTo(&fs, path, full_size - 5);  // cut into the final record

  auto wal = Wal::Open(&fs, "wal");
  ASSERT_TRUE(wal.ok());
  ASSERT_EQ(wal.value()->recovered_records().size(), 1u);
  EXPECT_EQ(wal.value()->recovered_records()[0].epoch, 1);
  EXPECT_GT(wal.value()->torn_bytes_dropped(), 0);
  // The repair is durable: the file now ends at the last valid record.
  auto file = fs.Open(path, /*create=*/false);
  ASSERT_TRUE(file.ok());
  auto size = file.value()->Size();
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(size.value(), full_size - 5 - wal.value()->torn_bytes_dropped());
  // And the next epoch continues after the surviving record.
  ASSERT_TRUE(wal.value()->Append(2, {{1, 2}, true}).ok());
}

TEST(Wal, CorruptRecordBeforeValidOnesIsNotATornTail) {
  MemFs fs;
  ASSERT_TRUE(fs.MakeDir("wal").ok());
  {
    auto wal = Wal::Open(&fs, "wal");
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE(wal.value()->Append(1, {{0, 1}, true}).ok());
    ASSERT_TRUE(wal.value()->Rotate(2).ok());
    ASSERT_TRUE(wal.value()->Append(2, {{1, 2}, true}).ok());
  }
  // Damage inside the *first* segment: payload corruption of a committed
  // record that newer segments prove is not a crash tail.
  FlipByte(&fs, JoinPath("wal", Wal::SegmentName(1)), 16 + 8 + 2);
  auto wal = Wal::Open(&fs, "wal");
  ASSERT_FALSE(wal.ok());
  EXPECT_EQ(wal.status().code(), StatusCode::kCorruption);
}

TEST(Wal, CrcFlipOnLastSegmentTailIsDropped) {
  MemFs fs;
  ASSERT_TRUE(fs.MakeDir("wal").ok());
  int64_t record_bytes = 0;
  {
    auto wal = Wal::Open(&fs, "wal");
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE(wal.value()->Append(1, {{0, 1}, true}).ok());
    record_bytes = wal.value()->bytes_appended();
    ASSERT_TRUE(wal.value()->Append(2, {{1, 2}, true}).ok());
  }
  // Flip a payload byte of the FINAL record: indistinguishable from a
  // torn append, so recovery drops exactly that record.
  FlipByte(&fs, JoinPath("wal", Wal::SegmentName(1)), 16 + record_bytes + 9);
  auto wal = Wal::Open(&fs, "wal");
  ASSERT_TRUE(wal.ok());
  ASSERT_EQ(wal.value()->recovered_records().size(), 1u);
  EXPECT_EQ(wal.value()->torn_bytes_dropped(), record_bytes);
}

// --- checkpoints ----------------------------------------------------------

CheckpointImage MakeImage(int64_t epoch, uint64_t seed) {
  GeneratorParams params;
  params.num_nodes = 60;
  params.avg_out_degree = 3;
  params.locality = 20;
  params.seed = seed;
  CheckpointImage image;
  image.num_nodes = params.num_nodes;
  image.epoch = epoch;
  image.arcs = GenerateDag(params);
  auto core = ReachCore::Build(image.arcs, image.num_nodes);
  EXPECT_TRUE(core.ok());
  image.core = core.value();
  return image;
}

TEST(Checkpoint, NamesRoundTrip) {
  int64_t epoch = 0;
  EXPECT_TRUE(ParseCheckpointName(CheckpointName(7), &epoch));
  EXPECT_EQ(epoch, 7);
  EXPECT_FALSE(ParseCheckpointName("checkpoint.tmp", &epoch));
  EXPECT_FALSE(ParseCheckpointName("wal-00000000000000000001.log", &epoch));
}

TEST(Checkpoint, WriteLoadRoundTrip) {
  MemFs fs;
  ASSERT_TRUE(fs.MakeDir("db").ok());
  const CheckpointImage image = MakeImage(9, /*seed=*/5);
  std::string final_name;
  ASSERT_TRUE(WriteCheckpoint(&fs, "db", image, &final_name).ok());
  EXPECT_EQ(final_name, CheckpointName(9));
  auto exists = fs.Exists(JoinPath("db", "checkpoint.tmp"));
  ASSERT_TRUE(exists.ok());
  EXPECT_FALSE(exists.value());  // renamed away

  int64_t skipped = -1;
  auto loaded = LoadNewestCheckpoint(&fs, "db", &skipped);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(skipped, 0);
  EXPECT_EQ(loaded.value().epoch, 9);
  EXPECT_EQ(loaded.value().num_nodes, image.num_nodes);
  EXPECT_EQ(loaded.value().arcs, image.arcs);
  ASSERT_NE(loaded.value().core, nullptr);
  EXPECT_EQ(loaded.value().core->num_input_nodes, image.num_nodes);
}

TEST(Checkpoint, IgnoresLeftoverTmpAndFallsBackPastDamage) {
  MemFs fs;
  ASSERT_TRUE(fs.MakeDir("db").ok());
  ASSERT_TRUE(WriteCheckpoint(&fs, "db", MakeImage(3, 1)).ok());
  ASSERT_TRUE(WriteCheckpoint(&fs, "db", MakeImage(8, 2)).ok());

  // A crash mid-checkpoint leaves a half-written tmp: must be invisible.
  WriteAll(&fs, JoinPath("db", "checkpoint.tmp"), "TCCKPT01garbage");
  int64_t skipped = -1;
  auto loaded = LoadNewestCheckpoint(&fs, "db", &skipped);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().epoch, 8);
  EXPECT_EQ(skipped, 0);

  // Bit-rot in the newest image: fall back to the older generation.
  FlipByte(&fs, JoinPath("db", CheckpointName(8)), 40);
  loaded = LoadNewestCheckpoint(&fs, "db", &skipped);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().epoch, 3);
  EXPECT_EQ(skipped, 1);

  // With every checkpoint damaged there is nothing to load.
  FlipByte(&fs, JoinPath("db", CheckpointName(3)), 40);
  loaded = LoadNewestCheckpoint(&fs, "db", &skipped);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
}

TEST(Checkpoint, PruneKeepsNewestGenerations) {
  MemFs fs;
  ASSERT_TRUE(fs.MakeDir("db").ok());
  for (int64_t epoch : {2, 5, 11, 17}) {
    ASSERT_TRUE(WriteCheckpoint(&fs, "db", MakeImage(epoch, 3)).ok());
  }
  ASSERT_TRUE(PruneCheckpoints(&fs, "db", /*keep=*/2).ok());
  auto names = fs.List("db");
  ASSERT_TRUE(names.ok());
  EXPECT_EQ(names.value(), (std::vector<std::string>{CheckpointName(11),
                                                     CheckpointName(17)}));
}

// --- durable service end to end -------------------------------------------

ArcList SmallBase(NodeId* num_nodes) {
  GeneratorParams params;
  params.num_nodes = 80;
  params.avg_out_degree = 3;
  params.locality = 25;
  params.seed = 77;
  *num_nodes = params.num_nodes;
  return GenerateDag(params);
}

TEST(DurableService, RecoveryReplaysOnlyTheWalSuffix) {
  MemFs fs;
  NodeId n = 0;
  const ArcList base = SmallBase(&n);
  auto db = DurableDynamicService::Create(&fs, "db", base, n);
  ASSERT_TRUE(db.ok());

  // Mutations before the checkpoint must NOT be replayed after it.
  ASSERT_TRUE(db.value()->InsertArc(0, 70).ok());
  ASSERT_TRUE(db.value()->InsertArc(1, 71).ok());
  ASSERT_TRUE(db.value()->Checkpoint().ok());
  const auto checkpoint_epoch = db.value()->epoch();
  EXPECT_EQ(checkpoint_epoch, 2);

  ASSERT_TRUE(db.value()->InsertArc(2, 72).ok());
  ASSERT_TRUE(db.value()->DeleteArc(0, 70).ok());
  ASSERT_TRUE(db.value()->InsertArc(3, 73).ok());
  const auto final_epoch = db.value()->epoch();
  // Record the pre-crash answers the replayed state must reproduce.
  std::vector<std::pair<NodeId, NodeId>> pairs;
  std::vector<bool> answers;
  Rng rng(123);
  for (int i = 0; i < 40; ++i) {
    const NodeId s = static_cast<NodeId>(rng.Uniform(0, n - 1));
    const NodeId d = static_cast<NodeId>(rng.Uniform(0, n - 1));
    auto answer = db.value()->Query(s, d);
    ASSERT_TRUE(answer.ok());
    pairs.emplace_back(s, d);
    answers.push_back(answer.value().reachable);
  }
  db.value().reset();  // "crash" (MemFs keeps every synced write)

  RecoveryReport report;
  auto recovered = DurableDynamicService::Recover(&fs, "db", {}, &report);
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(report.checkpoint_epoch, checkpoint_epoch);
  EXPECT_EQ(report.replayed_entries, 3);  // exactly the post-checkpoint ops
  EXPECT_EQ(report.stale_entries_skipped, 0);
  EXPECT_EQ(report.recovered_epoch, final_epoch);
  EXPECT_EQ(recovered.value()->epoch(), final_epoch);

  // The replayed state answers like the pre-crash one.
  for (size_t i = 0; i < pairs.size(); ++i) {
    auto q = recovered.value()->Query(pairs[i].first, pairs[i].second);
    ASSERT_TRUE(q.ok());
    EXPECT_EQ(q.value().reachable, answers[i])
        << "(" << pairs[i].first << ", " << pairs[i].second << ")";
  }
}

TEST(DurableService, SkipsStaleWalEntriesAfterCheckpointRenameCrash) {
  MemFs fs;
  NodeId n = 0;
  const ArcList base = SmallBase(&n);
  auto db = DurableDynamicService::Create(&fs, "db", base, n);
  ASSERT_TRUE(db.ok());
  ASSERT_TRUE(db.value()->InsertArc(0, 70).ok());
  ASSERT_TRUE(db.value()->InsertArc(1, 71).ok());
  const auto epoch = db.value()->epoch();

  // Simulate dying between the checkpoint's rename and the WAL
  // truncation: a durable checkpoint at the current epoch exists, but the
  // WAL still holds records at and below its watermark.
  CheckpointImage image;
  image.num_nodes = n;
  image.epoch = epoch;
  auto snapshot = db.value()->log()->SnapshotArcs();
  image.arcs = snapshot.arcs;
  auto core = ReachCore::Build(image.arcs, n);
  ASSERT_TRUE(core.ok());
  image.core = core.value();
  ASSERT_TRUE(WriteCheckpoint(&fs, "db", image).ok());
  db.value().reset();

  RecoveryReport report;
  auto recovered = DurableDynamicService::Recover(&fs, "db", {}, &report);
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(report.checkpoint_epoch, epoch);
  EXPECT_EQ(report.replayed_entries, 0);
  EXPECT_EQ(report.stale_entries_skipped, 2);
  EXPECT_EQ(recovered.value()->epoch(), epoch);
  auto q = recovered.value()->Query(1, 71);
  ASSERT_TRUE(q.ok());
  EXPECT_TRUE(q.value().reachable);
}

TEST(DurableService, DoubleRecoveryIsIdempotent) {
  MemFs fs;
  NodeId n = 0;
  const ArcList base = SmallBase(&n);
  {
    auto db = DurableDynamicService::Create(&fs, "db", base, n);
    ASSERT_TRUE(db.ok());
    ASSERT_TRUE(db.value()->InsertArc(0, 70).ok());
    ASSERT_TRUE(db.value()->InsertArc(1, 71).ok());
  }
  RecoveryReport first;
  {
    auto db = DurableDynamicService::Recover(&fs, "db", {}, &first);
    ASSERT_TRUE(db.ok());  // recovery itself writes nothing logical
  }
  RecoveryReport second;
  auto db = DurableDynamicService::Recover(&fs, "db", {}, &second);
  ASSERT_TRUE(db.ok());
  EXPECT_EQ(second.checkpoint_epoch, first.checkpoint_epoch);
  EXPECT_EQ(second.replayed_entries, first.replayed_entries);
  EXPECT_EQ(second.recovered_epoch, first.recovered_epoch);
  EXPECT_EQ(db.value()->epoch(), first.recovered_epoch);
}

TEST(DurableService, FileBackedStoreMatchesMemoryStore) {
  MemFs fs;
  NodeId n = 0;
  const ArcList base = SmallBase(&n);

  DurableOptions file_options;
  file_options.file_backed_store = true;
  auto mem_db = DurableDynamicService::Create(&fs, "mem", base, n);
  auto file_db =
      DurableDynamicService::Create(&fs, "file", base, n, file_options);
  ASSERT_TRUE(mem_db.ok());
  ASSERT_TRUE(file_db.ok());

  Rng rng(99);
  for (int op = 0; op < 120; ++op) {
    const NodeId s = static_cast<NodeId>(rng.Uniform(0, n - 1));
    const NodeId d = static_cast<NodeId>(rng.Uniform(0, n - 1));
    if (s == d) continue;
    const auto a = mem_db.value()->log()->HasArc(s, d)
                       ? mem_db.value()->DeleteArc(s, d)
                       : mem_db.value()->InsertArc(s, d);
    const auto b = file_db.value()->log()->HasArc(s, d)
                       ? file_db.value()->DeleteArc(s, d)
                       : file_db.value()->InsertArc(s, d);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    ASSERT_EQ(a.value(), b.value());
  }
  // Same logical state through the paged mirror, device notwithstanding.
  for (NodeId v = 0; v < n; ++v) {
    std::vector<NodeId> mem_row, file_row;
    ASSERT_TRUE(mem_db.value()->log()->ReadSuccessors(v, &mem_row).ok());
    ASSERT_TRUE(file_db.value()->log()->ReadSuccessors(v, &file_row).ok());
    std::sort(mem_row.begin(), mem_row.end());
    std::sort(file_row.begin(), file_row.end());
    EXPECT_EQ(mem_row, file_row) << "node " << v;
  }
  // Real traffic shows up only on the real device.
  EXPECT_EQ(mem_db.value()->store_device_stats().page_writes, 0u);
  ASSERT_TRUE(file_db.value()->Checkpoint().ok());  // flush barrier
  EXPECT_GT(file_db.value()->store_device_stats().page_writes, 0u);
  EXPECT_GT(file_db.value()->store_device_stats().syncs, 0u);

  // The file-backed service recovers too (the mirror is rebuilt from the
  // checkpoint, not read back from pages).
  file_db.value().reset();
  RecoveryReport report;
  auto recovered =
      DurableDynamicService::Recover(&fs, "file", file_options, &report);
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(report.replayed_entries, 0);
  for (NodeId v = 0; v < n; ++v) {
    std::vector<NodeId> mem_row, file_row;
    ASSERT_TRUE(mem_db.value()->log()->ReadSuccessors(v, &mem_row).ok());
    ASSERT_TRUE(recovered.value()->log()->ReadSuccessors(v, &file_row).ok());
    std::sort(mem_row.begin(), mem_row.end());
    std::sort(file_row.begin(), file_row.end());
    EXPECT_EQ(mem_row, file_row) << "node " << v;
  }
}

// --- fault injection ------------------------------------------------------

TEST(FaultFs, CountsMutatingOpsAndTearsTheDyingWrite) {
  MemFs base;
  FaultFs fault(&base);
  ASSERT_TRUE(fault.MakeDir("d").ok());  // uncounted
  EXPECT_EQ(fault.mutating_ops(), 0);

  auto file = fault.Open(JoinPath("d", "f"), /*create=*/true);
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE(file.value()->WriteAt(0, "aaaa", 4).ok());
  EXPECT_EQ(fault.mutating_ops(), 1);
  EXPECT_FALSE(fault.crashed());

  fault.Arm(/*ops_until_crash=*/1, /*torn_bytes=*/2);
  ASSERT_TRUE(file.value()->WriteAt(4, "bbbb", 4).ok());  // survives
  EXPECT_EQ(file.value()->WriteAt(8, "cccc", 4).code(),
            StatusCode::kInternal);  // dies, tearing 2 bytes
  EXPECT_TRUE(fault.crashed());
  // Every later mutating op fails; reads keep working.
  EXPECT_FALSE(file.value()->Sync().ok());
  EXPECT_FALSE(fault.Rename(JoinPath("d", "f"), JoinPath("d", "g")).ok());
  EXPECT_EQ(ReadAll(&base, JoinPath("d", "f")), "aaaabbbbcc");
}

// The two-run alignment trick: the same workload against two fresh MemFs
// trees issues the same mutating-syscall sequence, so an op index counted
// in run 1 targets the exact same syscall in run 2. This is what makes
// every injection point of the crash harness reachable deterministically.
TEST(FaultFs, SameWorkloadCountsSameOps) {
  NodeId n = 0;
  const ArcList base = SmallBase(&n);
  auto run = [&](FaultFs* fault) {
    auto db = DurableDynamicService::Create(fault, "db", base, n);
    ASSERT_TRUE(db.ok());
    ASSERT_TRUE(db.value()->InsertArc(0, 70).ok());
    ASSERT_TRUE(db.value()->Checkpoint().ok());
    ASSERT_TRUE(db.value()->DeleteArc(0, 70).ok());
  };
  MemFs base1, base2;
  FaultFs fault1(&base1), fault2(&base2);
  run(&fault1);
  run(&fault2);
  EXPECT_GT(fault1.mutating_ops(), 0);
  EXPECT_EQ(fault1.mutating_ops(), fault2.mutating_ops());
}

TEST(FaultFs, EveryInjectionPointOfAShortTraceRecovers) {
  NodeId n = 0;
  const ArcList base = SmallBase(&n);
  // Count the trace's mutating syscalls with an unarmed run.
  int64_t total_ops = 0;
  {
    MemFs disk;
    FaultFs fault(&disk);
    auto db = DurableDynamicService::Create(&fault, "db", base, n);
    ASSERT_TRUE(db.ok());
    ASSERT_TRUE(db.value()->InsertArc(0, 70).ok());
    ASSERT_TRUE(db.value()->InsertArc(1, 71).ok());
    ASSERT_TRUE(db.value()->Checkpoint().ok());
    ASSERT_TRUE(db.value()->DeleteArc(0, 70).ok());
    total_ops = fault.mutating_ops();
  }
  // Re-run the identical trace once per injection point: recovery must
  // succeed and land at one of the epochs the cut can legally produce.
  for (int64_t crash_at = 1; crash_at <= total_ops; ++crash_at) {
    MemFs disk;
    FaultFs fault(&disk);
    fault.Arm(crash_at - 1, /*torn_bytes=*/crash_at % 7);
    MutationLog::Epoch last_ok = 0;
    {
      auto db = DurableDynamicService::Create(&fault, "db", base, n);
      if (db.ok()) {
        auto step = [&](Result<MutationLog::Epoch> r) {
          if (r.ok()) last_ok = r.value();
          return r.ok();
        };
        if (step(db.value()->InsertArc(0, 70)) &&
            step(db.value()->InsertArc(1, 71)) &&
            db.value()->Checkpoint().ok()) {
          step(db.value()->DeleteArc(0, 70));
        }
      }
      ASSERT_TRUE(fault.crashed()) << "crash_at=" << crash_at;
    }
    // Recover from the surviving image. Create itself may have died
    // before checkpoint 0 became durable — then there is nothing to
    // recover, which is also a legal outcome of dying that early.
    RecoveryReport report;
    auto recovered = DurableDynamicService::Recover(&disk, "db", {}, &report);
    if (!recovered.ok()) {
      EXPECT_EQ(recovered.status().code(), StatusCode::kNotFound)
          << "crash_at=" << crash_at << ": "
          << recovered.status().ToString();
      continue;
    }
    EXPECT_GE(report.recovered_epoch, last_ok) << "crash_at=" << crash_at;
    EXPECT_LE(report.recovered_epoch, last_ok + 1) << "crash_at=" << crash_at;
    EXPECT_EQ(report.replayed_entries,
              report.recovered_epoch - report.checkpoint_epoch);
  }
}

// --- crash harness smoke (full sweep lives in persist_stress_test) --------

TEST(CrashHarness, SmokeSweepPasses) {
  CrashStressOptions options;
  options.num_seeds = 3;
  options.base_seed = 11;
  options.ops_per_seed = 120;
  options.node_counts = {40};
  CrashStressReport report;
  CrashStressFailure failure;
  const Status status = RunCrashStress(options, &report, &failure);
  ASSERT_TRUE(status.ok()) << failure.ToString();
  EXPECT_EQ(report.seeds, 3);
  EXPECT_GT(report.queries_checked, 0);
}

}  // namespace
}  // namespace tcdb
