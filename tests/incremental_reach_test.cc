// Incremental-tier tests (ctest label: `dynamic`): the property-based
// differential battery for per-pivot reachability trees — >= 10k mixed
// ops across three graph families (sparse DAG, denser DAG, cyclic with
// SCC merges and splits), answers checked against the reference closure
// at EVERY epoch boundary and after every snapshot adoption via the
// dynamic_trace.h fixture — plus named adversarial delete regressions
// (pivot-subtree disconnection, last arc into a supportive vertex, SCC
// split), rescue-path repairs, the rebuild-advise policy, and tier
// on/off answer parity. check.sh re-runs the randomized sweeps 50-seed
// under ASan/UBSan through `tcdb_cli mutate-stress`.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "dynamic/dynamic_reach_service.h"
#include "dynamic/incremental.h"
#include "dynamic/mutation_log.h"
#include "dynamic_trace.h"
#include "graph/generator.h"
#include "util/random.h"

namespace tcdb {
namespace {

// --- The differential battery -------------------------------------------

struct Family {
  const char* name;
  NodeId num_nodes;
  int32_t avg_out_degree;
  int32_t locality;
  int32_t num_back_arcs;  // > 0: cyclic, deletes split SCCs
  int32_t ops;
};

void RunFamilyTrace(const Family& family, uint64_t seed,
                    bool incremental = true) {
  GeneratorParams params;
  params.num_nodes = family.num_nodes;
  params.avg_out_degree = family.avg_out_degree;
  params.locality = family.locality;
  params.seed = seed;
  const ArcList base =
      family.num_back_arcs > 0
          ? GenerateCyclicDigraph(params, family.num_back_arcs)
          : GenerateDag(params);

  DynamicTraceOptions options;
  options.service.incremental = incremental;
  options.seed = seed ^ 0x7ace;
  DynamicTraceHarness harness(base, family.num_nodes, options);

  // Heavier delete share than the generic stress mix: deletes are where
  // the subtree repair (and, with back arcs, SCC splits) live.
  Rng rng(seed);
  for (int32_t op = 0; op < family.ops; ++op) {
    const Status status = harness.RandomOp(&rng, 0.35, 0.30);
    ASSERT_TRUE(status.ok()) << family.name << " seed " << seed << " op "
                             << op << ": " << status.ToString();
  }
  ASSERT_TRUE(harness.VerifyEpoch().ok());

  // The fixture must have verified every epoch boundary the trace
  // minted, and every adoption its rebuild cadence performed.
  EXPECT_EQ(harness.log()->current_epoch(), harness.mutations());
  EXPECT_GE(harness.epochs_verified(), harness.mutations());
  EXPECT_GT(harness.mutations(), family.ops / 3);
  if (incremental) {
    const IncrementalStats& stats = harness.service()->incremental()->stats();
    EXPECT_EQ(stats.inserts_applied + stats.deletes_applied,
              harness.mutations());
    // The tier must have actually decided queries, not just idled while
    // the patched/live tiers answered everything.
    EXPECT_GT(harness.service()->stats().incremental_served, 0);
    EXPECT_GT(stats.repairs(), 0);
  } else {
    EXPECT_EQ(harness.service()->incremental(), nullptr);
    EXPECT_EQ(harness.service()->stats().incremental_served, 0);
  }
}

TEST(IncrementalDifferentialTest, TenThousandMixedOpsAcrossFamilies) {
  // >= 10k ops total; the small family is verified ALL-PAIRS at every
  // epoch boundary, the larger ones by seeded samples.
  const Family families[] = {
      {"sparse-dag", 24, 2, 10, 0, 3600},
      {"denser-dag", 120, 5, 50, 0, 3600},
      {"cyclic-scc", 80, 3, 30, 14, 3600},
  };
  for (const Family& family : families) {
    RunFamilyTrace(family, /*seed=*/1);
  }
}

TEST(IncrementalDifferentialTest, CyclicFamilyExtraSeeds) {
  // The cyclic family is where SCC merges (back-arc insert) and splits
  // (cycle-arc delete) churn every pivot tree at once; sweep more seeds.
  const Family family = {"cyclic-scc", 48, 3, 20, 10, 800};
  for (uint64_t seed = 2; seed < 6; ++seed) {
    RunFamilyTrace(family, seed);
  }
}

TEST(IncrementalParityTest, TierOnAndOffAgreeOnRandomTraces) {
  // Satellite of the check.sh on/off proof at unit scale: identical
  // traces replayed with the tier forced off must still match the
  // reference everywhere (RunFamilyTrace checks every answer), only the
  // serving-stage mix may differ.
  const Family family = {"cyclic-scc", 32, 3, 15, 8, 700};
  RunFamilyTrace(family, /*seed=*/7, /*incremental=*/true);
  RunFamilyTrace(family, /*seed=*/7, /*incremental=*/false);
}

// --- Named adversarial deletes ------------------------------------------

IncrementalOptions PinnedPivots(std::vector<NodeId> pivots) {
  IncrementalOptions options;
  options.pinned_pivots = std::move(pivots);
  return options;
}

TEST(IncrementalAdversarialTest, DeleteDisconnectsPivotTreeRoot) {
  // Deleting the root's only out-arc disconnects the pivot's ENTIRE
  // forward subtree — the worst-case affected set.
  const ArcList arcs = {{0, 1}, {1, 2}, {1, 3}, {2, 4}};
  auto index = IncrementalIndex::Build(arcs, 5, PinnedPivots({0}));
  ASSERT_EQ(index->pivots(), std::vector<NodeId>({0}));
  for (NodeId v = 0; v < 5; ++v) EXPECT_TRUE(index->InForwardTree(0, v));

  index->OnDelete(0, 1);
  EXPECT_TRUE(index->InForwardTree(0, 0));  // the root itself survives
  for (NodeId v = 1; v < 5; ++v) EXPECT_FALSE(index->InForwardTree(0, v));
  EXPECT_EQ(index->stats().nodes_detached, 4);
  EXPECT_GE(index->stats().subtree_repairs, 1);
  // The shrunken tree still decides exactly (pivot endpoint rule).
  EXPECT_EQ(index->Decide(0, 4), ReachIndex::Verdict::kNo);
  EXPECT_EQ(index->Decide(0, 0), ReachIndex::Verdict::kYes);

  // Reinserting restores the full certificate by tree extension.
  index->OnInsert(0, 1);
  for (NodeId v = 0; v < 5; ++v) EXPECT_TRUE(index->InForwardTree(0, v));
  EXPECT_EQ(index->stats().nodes_attached, 4);
  EXPECT_EQ(index->Decide(0, 4), ReachIndex::Verdict::kYes);
}

TEST(IncrementalAdversarialTest, DeleteLastArcIntoSupportiveVertex) {
  // The supportive vertex 3 has exactly one in-arc; deleting it empties
  // the backward tree down to the pivot itself.
  const ArcList arcs = {{0, 1}, {1, 3}, {3, 4}};
  auto index = IncrementalIndex::Build(arcs, 5, PinnedPivots({3}));
  EXPECT_TRUE(index->InBackwardTree(0, 0));
  EXPECT_TRUE(index->InBackwardTree(0, 1));

  index->OnDelete(1, 3);
  EXPECT_TRUE(index->InBackwardTree(0, 3));
  EXPECT_FALSE(index->InBackwardTree(0, 0));
  EXPECT_FALSE(index->InBackwardTree(0, 1));
  // Forward side is untouched: 3 -> 4 still stands.
  EXPECT_TRUE(index->InForwardTree(0, 4));
  // Decide stays exact through the collapse (endpoint-is-pivot rules).
  EXPECT_EQ(index->Decide(0, 3), ReachIndex::Verdict::kNo);
  EXPECT_EQ(index->Decide(3, 4), ReachIndex::Verdict::kYes);
  EXPECT_EQ(index->Decide(0, 1), ReachIndex::Verdict::kUnknown);
}

TEST(IncrementalAdversarialTest, DeleteSplitsScc) {
  // 0 -> 1 -> 2 -> 0 is one SCC with entry 3 -> 0 and exit 2 -> 4;
  // deleting (2, 0) splits it and every membership set must shrink to
  // the post-split truth.
  const ArcList arcs = {{0, 1}, {1, 2}, {2, 0}, {3, 0}, {2, 4}};
  auto index = IncrementalIndex::Build(arcs, 5, PinnedPivots({1}));
  EXPECT_TRUE(index->InForwardTree(0, 0));   // 1 -> 2 -> 0
  EXPECT_TRUE(index->InBackwardTree(0, 2));  // 2 -> 0 -> 1

  index->OnDelete(2, 0);
  EXPECT_FALSE(index->InForwardTree(0, 0));  // fwd(1) = {1, 2, 4}
  EXPECT_TRUE(index->InForwardTree(0, 2));
  EXPECT_TRUE(index->InForwardTree(0, 4));
  EXPECT_FALSE(index->InBackwardTree(0, 2));  // bwd(1) = {0, 1, 3}
  EXPECT_TRUE(index->InBackwardTree(0, 0));
  EXPECT_TRUE(index->InBackwardTree(0, 3));
  EXPECT_EQ(index->Decide(1, 0), ReachIndex::Verdict::kNo);
  EXPECT_EQ(index->Decide(3, 4), ReachIndex::Verdict::kYes);  // 3->0->1->2->4

  // Re-closing the cycle elsewhere merges the SCC back.
  index->OnInsert(4, 0);
  EXPECT_EQ(index->Decide(1, 0), ReachIndex::Verdict::kYes);
  EXPECT_TRUE(index->InBackwardTree(0, 2));
}

TEST(IncrementalAdversarialTest, TreeArcDeleteRescuesThroughAlternateAnchor) {
  // 2 is reachable both via 1 and via 3: deleting whichever arc the tree
  // certificate chose must rescue 2 through the surviving anchor, not
  // drop it.
  const ArcList arcs = {{0, 1}, {1, 2}, {0, 3}, {3, 2}, {2, 4}};
  auto index = IncrementalIndex::Build(arcs, 5, PinnedPivots({0}));
  index->OnDelete(1, 2);
  index->OnDelete(3, 2);  // second delete kills whichever path remained
  EXPECT_FALSE(index->InForwardTree(0, 2));
  EXPECT_FALSE(index->InForwardTree(0, 4));
  EXPECT_TRUE(index->InForwardTree(0, 1));
  EXPECT_TRUE(index->InForwardTree(0, 3));
  // Exactly one of the two deletes was a tree arc with a rescue; the
  // other either repaired nothing (non-tree) or detached {2, 4}.
  EXPECT_EQ(index->stats().nodes_detached, 2);
}

// --- Rebuild-advise policy ----------------------------------------------

TEST(IncrementalRebuildPolicyTest, RepairCostAdvisesRebuildAndAdoptionResets) {
  // A long chain makes every (0, 1) delete/insert pair repair the whole
  // pivot subtree, so the arc-scan budget trips quickly.
  ArcList arcs;
  const NodeId n = 32;
  for (NodeId v = 0; v + 1 < n; ++v) arcs.push_back({v, v + 1});
  IncrementalOptions options = PinnedPivots({0});
  // Budget of several repair rounds: each delete+insert pair scans on
  // the order of 2 * n arcs, so ratio 8 (budget ~8 * (n + m) ~ 500 arc
  // scans) trips after a handful of rounds, not the first one.
  options.rebuild_cost_ratio = 8.0;
  auto index = IncrementalIndex::Build(arcs, n, options);
  EXPECT_FALSE(index->rebuild_advised());
  int rounds = 0;
  while (!index->rebuild_advised()) {
    index->OnDelete(0, 1);
    index->OnInsert(0, 1);
    ASSERT_LT(++rounds, 1000) << "never advised";
  }
  EXPECT_GE(rounds, 2);  // guarantees one round alone is under budget
  EXPECT_EQ(index->stats().rebuilds_advised, 1);

  index->OnSnapshotAdopted();
  EXPECT_FALSE(index->rebuild_advised());
  // The accumulator reset too: one more repair round must not re-trip
  // the budget instantly.
  index->OnDelete(0, 1);
  index->OnInsert(0, 1);
  EXPECT_FALSE(index->rebuild_advised());
}

TEST(IncrementalRebuildPolicyTest, NonPositiveRatioNeverAdvises) {
  ArcList arcs;
  const NodeId n = 16;
  for (NodeId v = 0; v + 1 < n; ++v) arcs.push_back({v, v + 1});
  IncrementalOptions options = PinnedPivots({0});
  options.rebuild_cost_ratio = 0.0;
  auto index = IncrementalIndex::Build(arcs, n, options);
  for (int round = 0; round < 64; ++round) {
    index->OnDelete(0, 1);
    index->OnInsert(0, 1);
  }
  EXPECT_FALSE(index->rebuild_advised());
  EXPECT_EQ(index->stats().rebuilds_advised, 0);
}

// --- Service-level ladder integration -----------------------------------

TEST(IncrementalLadderTest, DirtyOverlayQueriesServeFromIncrementalTier) {
  auto log_result = MutationLog::Open({{0, 1}, {1, 2}}, 4);
  ASSERT_TRUE(log_result.ok());
  DynamicReachOptions options;
  options.incremental_options.pinned_pivots = {1};
  auto service_result =
      DynamicReachService::Create(log_result.value().get(), options);
  ASSERT_TRUE(service_result.ok());
  DynamicReachService* service = service_result.value().get();

  // Empty overlay: the snapshot tier still answers.
  auto answer = service->Query(0, 2);
  ASSERT_TRUE(answer.ok());
  EXPECT_EQ(service->stats().snapshot_served, 1);
  EXPECT_EQ(service->stats().incremental_served, 0);

  // Dirty overlay: the O(k) decide intercepts before the patched BFS —
  // YES through the pivot (0 -> 1 -> 2), NO out of its forward cone, and
  // the freshly inserted arc is already in the repaired tree.
  ASSERT_TRUE(service->InsertArc(2, 3).ok());
  answer = service->Query(0, 2);
  ASSERT_TRUE(answer.ok());
  EXPECT_TRUE(answer.value().reachable);
  EXPECT_EQ(answer.value().stage, ReachStage::kIncremental);
  answer = service->Query(1, 3);
  ASSERT_TRUE(answer.ok());
  EXPECT_TRUE(answer.value().reachable);
  EXPECT_EQ(answer.value().stage, ReachStage::kIncremental);
  answer = service->Query(2, 0);
  ASSERT_TRUE(answer.ok());
  EXPECT_FALSE(answer.value().reachable);
  EXPECT_EQ(answer.value().stage, ReachStage::kIncremental);
  EXPECT_EQ(service->stats().incremental_served, 3);
  EXPECT_EQ(service->stats().escalations, 0);
}

TEST(TraceFixtureTest, VerifiesEveryEpochBoundaryAndAdoption) {
  DynamicTraceOptions options;
  options.rebuild_every = 2;
  DynamicTraceHarness harness({{0, 1}}, 8, options);
  ASSERT_TRUE(harness.Insert(1, 2).ok());
  ASSERT_TRUE(harness.Insert(2, 3).ok());  // hits the rebuild cadence
  ASSERT_TRUE(harness.Delete(0, 1).ok());
  ASSERT_TRUE(harness.Insert(3, 4).ok());  // hits it again
  EXPECT_EQ(harness.mutations(), 4);
  EXPECT_EQ(harness.adoptions_verified(), 2);
  // Every mutation boundary checked, plus one extra check per adoption.
  EXPECT_EQ(harness.epochs_verified(), 6);
  EXPECT_EQ(harness.service()->stats().snapshots_adopted, 2);
}

}  // namespace
}  // namespace tcdb
