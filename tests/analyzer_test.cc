// Rectangle-model analyzer tests, including property tests for the paper's
// Theorem 1: H(G) = H(TR(G)) = H(TC(G)) and W(TR) <= W(G) <= W(TC).

#include <gtest/gtest.h>

#include "graph/algorithms.h"
#include "graph/analyzer.h"
#include "graph/generator.h"

namespace tcdb {
namespace {

TEST(LevelsTest, HandComputed) {
  // 0 -> 1 -> 2, 0 -> 2: levels are 3, 2, 1.
  auto levels = ComputeNodeLevels(Digraph(3, {{0, 1}, {0, 2}, {1, 2}}));
  ASSERT_TRUE(levels.ok());
  EXPECT_EQ(levels.value(), (std::vector<int32_t>{3, 2, 1}));
}

TEST(LevelsTest, SinksAreLevelOne) {
  auto levels = ComputeNodeLevels(Digraph(3, {}));
  ASSERT_TRUE(levels.ok());
  EXPECT_EQ(levels.value(), (std::vector<int32_t>{1, 1, 1}));
}

TEST(LevelsTest, FailsOnCycle) {
  EXPECT_FALSE(ComputeNodeLevels(Digraph(2, {{0, 1}, {1, 0}})).ok());
}

TEST(LevelsTest, ArcLocalityIsPositiveOnDag) {
  const ArcList arcs = GenerateDag({200, 5, 50, 3});
  const Digraph graph(200, arcs);
  auto levels = ComputeNodeLevels(graph);
  ASSERT_TRUE(levels.ok());
  for (const Arc& arc : arcs) {
    EXPECT_GE(ArcLocality(levels.value(), arc.src, arc.dst), 1);
  }
}

TEST(ReductionTest, DiamondHasOneRedundantArc) {
  // 0 -> 1 -> 2 plus shortcut 0 -> 2: the shortcut is redundant.
  auto info = ComputeReduction(Digraph(3, {{0, 1}, {0, 2}, {1, 2}}));
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info.value().num_redundant_arcs, 1);
  EXPECT_EQ(info.value().closure_size, 3);  // (0,1) (0,2) (1,2)
  // Successors(0) = {1, 2}; the arc to 2 (index 1) is the redundant one.
  EXPECT_FALSE(info.value().redundant[0][0]);
  EXPECT_TRUE(info.value().redundant[0][1]);
}

TEST(ReductionTest, ChainHasNoRedundancy) {
  ArcList arcs;
  for (NodeId v = 0; v + 1 < 10; ++v) arcs.push_back(Arc{v, v + 1});
  auto info = ComputeReduction(Digraph(10, arcs));
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info.value().num_redundant_arcs, 0);
  EXPECT_EQ(info.value().closure_size, 45);  // 9+8+...+1
}

TEST(ReductionTest, ClosureSizeMatchesReference) {
  const ArcList arcs = GenerateDag({150, 5, 40, 21});
  const Digraph graph(150, arcs);
  auto info = ComputeReduction(graph);
  ASSERT_TRUE(info.ok());
  int64_t expected = 0;
  for (const auto& successors : ReferenceClosure(graph)) {
    expected += static_cast<int64_t>(successors.size());
  }
  EXPECT_EQ(info.value().closure_size, expected);
}

TEST(ReductionTest, TransitiveReductionPreservesClosure) {
  const ArcList arcs = GenerateDag({120, 6, 30, 5});
  const Digraph graph(120, arcs);
  auto reduced = TransitiveReduction(graph);
  ASSERT_TRUE(reduced.ok());
  EXPECT_LE(reduced.value().NumArcs(), graph.NumArcs());
  EXPECT_EQ(ReferenceClosure(reduced.value()), ReferenceClosure(graph));
}

TEST(ReductionTest, ReductionIsMinimal) {
  // Removing any arc from TR(G) changes the closure (uniqueness of the DAG
  // transitive reduction, Aho-Garey-Ullman).
  const ArcList arcs = GenerateDag({40, 3, 10, 8});
  const Digraph graph(40, arcs);
  auto reduced = TransitiveReduction(graph);
  ASSERT_TRUE(reduced.ok());
  const ArcList tr_arcs = reduced.value().ToArcs();
  const auto closure = ReferenceClosure(graph);
  for (size_t skip = 0; skip < tr_arcs.size(); ++skip) {
    ArcList pruned;
    for (size_t i = 0; i < tr_arcs.size(); ++i) {
      if (i != skip) pruned.push_back(tr_arcs[i]);
    }
    EXPECT_NE(ReferenceClosure(Digraph(40, pruned)), closure)
        << "arc " << tr_arcs[skip].src << "->" << tr_arcs[skip].dst
        << " is not redundant in TR";
  }
}

class RectangleModelPropertyTest : public testing::TestWithParam<uint64_t> {};

// Paper Theorem 1, verified on random DAGs.
TEST_P(RectangleModelPropertyTest, TheoremOne) {
  const GeneratorParams params{120, 4, 40, GetParam()};
  const Digraph graph(params.num_nodes, GenerateDag(params));
  auto model = AnalyzeDag(graph);
  ASSERT_TRUE(model.ok());
  auto tr = TransitiveReduction(graph);
  ASSERT_TRUE(tr.ok());
  auto tc = TransitiveClosureGraph(graph);
  ASSERT_TRUE(tc.ok());
  auto tr_model = AnalyzeDag(tr.value());
  auto tc_model = AnalyzeDag(tc.value());
  ASSERT_TRUE(tr_model.ok());
  ASSERT_TRUE(tc_model.ok());

  // H(G) = H(TR(G)) = H(TC(G)).
  EXPECT_DOUBLE_EQ(model.value().height, tr_model.value().height);
  EXPECT_DOUBLE_EQ(model.value().height, tc_model.value().height);
  // W(TR(G)) <= W(G) <= W(TC(G)).
  EXPECT_LE(tr_model.value().width, model.value().width + 1e-9);
  EXPECT_LE(model.value().width, tc_model.value().width + 1e-9);
}

// Theorem 2: the model comes from a single traversal — cross-check the
// one-pass statistics against independently computed quantities.
TEST_P(RectangleModelPropertyTest, ModelConsistency) {
  const GeneratorParams params{150, 5, 50, GetParam() + 100};
  const Digraph graph(params.num_nodes, GenerateDag(params));
  auto model = AnalyzeDag(graph);
  ASSERT_TRUE(model.ok());
  const RectangleModel& m = model.value();
  EXPECT_EQ(m.num_arcs, graph.NumArcs());
  // H * W == |G| by construction.
  EXPECT_NEAR(m.height * m.width, static_cast<double>(m.num_arcs), 1e-6);
  // Heights and levels.
  auto levels = ComputeNodeLevels(graph);
  ASSERT_TRUE(levels.ok());
  int32_t max_level = 0;
  int64_t sum = 0;
  for (const int32_t level : levels.value()) {
    max_level = std::max(max_level, level);
    sum += level;
  }
  EXPECT_EQ(m.max_level, max_level);
  EXPECT_DOUBLE_EQ(m.height,
                   static_cast<double>(sum) / params.num_nodes);
  EXPECT_GE(m.avg_arc_locality, m.avg_irredundant_locality);
  EXPECT_LE(m.height, static_cast<double>(m.max_level));
}

INSTANTIATE_TEST_SUITE_P(Seeds, RectangleModelPropertyTest,
                         testing::Range<uint64_t>(1, 9));

TEST(RectangleModelTest, EmptyGraph) {
  auto model = AnalyzeDag(Digraph(5, {}));
  ASSERT_TRUE(model.ok());
  EXPECT_EQ(model.value().num_arcs, 0);
  EXPECT_DOUBLE_EQ(model.value().height, 1.0);  // all sinks, level 1
  EXPECT_DOUBLE_EQ(model.value().width, 0.0);
  EXPECT_EQ(model.value().closure_size, 0);
}

TEST(RectangleModelTest, IrredundantLocalityIsLower) {
  // Matches the paper's Table 2 observation: the average locality of
  // irredundant arcs is much lower than the average over all arcs.
  const Digraph graph(2000, GenerateDag({2000, 20, 200, 4}));
  auto model = AnalyzeDag(graph);
  ASSERT_TRUE(model.ok());
  EXPECT_LT(model.value().avg_irredundant_locality,
            model.value().avg_arc_locality);
}

}  // namespace
}  // namespace tcdb
