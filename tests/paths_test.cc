// Path reconstruction from SPN spanning trees: every returned path must be
// a real path in the input graph, and a path must exist for every
// (source, successor) pair.

#include <gtest/gtest.h>

#include <set>

#include "core/database.h"
#include "core/paths.h"
#include "graph/generator.h"

namespace tcdb {
namespace {

TEST(PathFromTreeTest, HandBuiltTree) {
  FlatTree tree(0);
  const int32_t one = tree.AddChild(0, 1);
  tree.AddChild(0, 2);
  const int32_t three = tree.AddChild(one, 3);
  tree.AddChild(three, 4);

  auto path = PathFromSpanningTree(tree, 4);
  ASSERT_TRUE(path.ok());
  EXPECT_EQ(path.value(), (std::vector<NodeId>{0, 1, 3, 4}));
  path = PathFromSpanningTree(tree, 2);
  ASSERT_TRUE(path.ok());
  EXPECT_EQ(path.value(), (std::vector<NodeId>{0, 2}));
  EXPECT_FALSE(PathFromSpanningTree(tree, 9).ok());
  EXPECT_FALSE(PathFromSpanningTree(tree, 0).ok());  // root is not its own
}

class SpnPathPropertyTest : public testing::TestWithParam<uint64_t> {};

TEST_P(SpnPathPropertyTest, AllPathsAreRealAndComplete) {
  const GeneratorParams params{150, 4, 40, GetParam()};
  const ArcList arcs = GenerateDag(params);
  const Digraph graph(params.num_nodes, arcs);
  auto db = TcDatabase::Create(arcs, params.num_nodes);
  ASSERT_TRUE(db.ok());

  const std::vector<NodeId> sources =
      SampleSourceNodes(params.num_nodes, 6, GetParam() + 7);
  ExecOptions options;
  options.capture_answer = true;
  options.capture_trees = true;
  auto run = db.value()->Execute(Algorithm::kSpn, QuerySpec::Partial(sources),
                                 options);
  ASSERT_TRUE(run.ok());

  const PathIndex index(run.value());
  EXPECT_EQ(index.size(), sources.size());

  // Fast arc membership for validation.
  std::set<std::pair<NodeId, NodeId>> arc_set;
  for (const Arc& arc : arcs) arc_set.emplace(arc.src, arc.dst);

  for (const auto& [source, successors] : run.value().answer) {
    for (const NodeId target : successors) {
      auto path = index.FindPath(source, target);
      ASSERT_TRUE(path.ok()) << source << " -> " << target;
      const std::vector<NodeId>& nodes = path.value();
      ASSERT_GE(nodes.size(), 2u);
      EXPECT_EQ(nodes.front(), source);
      EXPECT_EQ(nodes.back(), target);
      for (size_t i = 0; i + 1 < nodes.size(); ++i) {
        EXPECT_TRUE(arc_set.contains({nodes[i], nodes[i + 1]}))
            << "bogus arc " << nodes[i] << " -> " << nodes[i + 1];
      }
    }
    // And nothing beyond the closure: a node outside the successor set has
    // no path.
    for (NodeId probe = 0; probe < params.num_nodes; probe += 37) {
      const bool reachable =
          std::binary_search(successors.begin(), successors.end(), probe);
      EXPECT_EQ(index.FindPath(source, probe).ok(), reachable)
          << source << " -> " << probe;
    }
  }
  // Unknown source.
  NodeId not_a_source = 0;
  while (std::binary_search(sources.begin(), sources.end(), not_a_source)) {
    ++not_a_source;
  }
  EXPECT_FALSE(index.FindPath(not_a_source, 1).ok());
}

INSTANTIATE_TEST_SUITE_P(Seeds, SpnPathPropertyTest,
                         testing::Range<uint64_t>(1, 6));

TEST(SpnPathTest, TreesOnlyCapturedWhenRequested) {
  auto db = TcDatabase::Create({Arc{0, 1}, Arc{1, 2}}, 3);
  ASSERT_TRUE(db.ok());
  ExecOptions options;
  options.capture_answer = true;
  auto run = db.value()->Execute(Algorithm::kSpn, QuerySpec::Full(), options);
  ASSERT_TRUE(run.ok());
  EXPECT_TRUE(run.value().spanning_trees.empty());
  options.capture_trees = true;
  run = db.value()->Execute(Algorithm::kSpn, QuerySpec::Full(), options);
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(run.value().spanning_trees.size(), 3u);
}

}  // namespace
}  // namespace tcdb
