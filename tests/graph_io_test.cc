// Arc-list file format tests: parsing, headers, error handling, and a
// write/read round trip through a real file.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "graph/generator.h"
#include "relation/graph_io.h"

namespace tcdb {
namespace {

TEST(ParseArcTextTest, BasicArcs) {
  auto graph = ParseArcText("0 1\n1 2\n0 2\n");
  ASSERT_TRUE(graph.ok());
  EXPECT_EQ(graph.value().num_nodes, 3);
  EXPECT_EQ(graph.value().arcs,
            (ArcList{{0, 1}, {0, 2}, {1, 2}}));  // sorted
}

TEST(ParseArcTextTest, HeaderFixesNodeCount) {
  auto graph = ParseArcText("# nodes 10\n0 1\n");
  ASSERT_TRUE(graph.ok());
  EXPECT_EQ(graph.value().num_nodes, 10);
}

TEST(ParseArcTextTest, CommentsAndBlankLines) {
  auto graph = ParseArcText("# a comment\n\n   \n0 1  # trailing comment\n");
  ASSERT_TRUE(graph.ok());
  EXPECT_EQ(graph.value().arcs, (ArcList{{0, 1}}));
}

TEST(ParseArcTextTest, DuplicatesDropped) {
  auto graph = ParseArcText("0 1\n0 1\n0 1\n");
  ASSERT_TRUE(graph.ok());
  EXPECT_EQ(graph.value().arcs.size(), 1u);
}

TEST(ParseArcTextTest, Rejections) {
  EXPECT_FALSE(ParseArcText("0\n").ok());           // missing dst
  EXPECT_FALSE(ParseArcText("0 1 2\n").ok());       // trailing token
  EXPECT_FALSE(ParseArcText("a b\n").ok());         // not integers
  EXPECT_FALSE(ParseArcText("-1 0\n").ok());        // negative id
  EXPECT_FALSE(ParseArcText("").ok());              // empty, no header
  EXPECT_FALSE(ParseArcText("# nodes 2\n0 5\n").ok());  // beyond header
  EXPECT_FALSE(ParseArcText("# nodes 0\n").ok());   // bad header
}

TEST(ParseArcTextTest, HeaderOnlyGraph) {
  auto graph = ParseArcText("# nodes 4\n");
  ASSERT_TRUE(graph.ok());
  EXPECT_EQ(graph.value().num_nodes, 4);
  EXPECT_TRUE(graph.value().arcs.empty());
}

TEST(GraphIoFileTest, RoundTrip) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "tcdb_graph_io_test.txt")
          .string();
  const GeneratorParams params{120, 4, 30, 77};
  const ArcList arcs = GenerateDag(params);
  ASSERT_TRUE(WriteArcFile(path, arcs, params.num_nodes).ok());
  auto loaded = ReadArcFile(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().num_nodes, params.num_nodes);
  EXPECT_EQ(loaded.value().arcs, arcs);
  std::remove(path.c_str());
}

TEST(GraphIoFileTest, MissingFile) {
  auto loaded = ReadArcFile("/nonexistent/definitely/not/here.txt");
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace tcdb
