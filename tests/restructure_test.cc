// Restructuring-phase tests, driving DiscoverAndSort / WriteInitialLists /
// BuildPredecessorLists directly over a hand-built RunContext.

#include <gtest/gtest.h>

#include <algorithm>

#include "core/restructure.h"
#include "graph/algorithms.h"
#include "graph/generator.h"

namespace tcdb {
namespace {

class RestructureTest : public testing::Test {
 protected:
  void Build(const ArcList& arcs, NodeId n, bool with_inverse = false,
             size_t frames = 16) {
    ctx_.num_nodes = n;
    ctx_.rel_data = ctx_.pager.CreateFile("rel.dat");
    ctx_.rel_index = ctx_.pager.CreateFile("rel.idx");
    ctx_.inv_data = ctx_.pager.CreateFile("inv.dat");
    ctx_.inv_index = ctx_.pager.CreateFile("inv.idx");
    ctx_.succ_file = ctx_.pager.CreateFile("succ.dat");
    ctx_.pred_file = ctx_.pager.CreateFile("pred.dat");
    ctx_.buffers = std::make_unique<BufferManager>(&ctx_.pager, frames,
                                                   PagePolicy::kLru);
    ASSERT_TRUE(RelationFile::Build(ctx_.buffers.get(), ctx_.rel_data,
                                    ctx_.rel_index, arcs, &ctx_.relation)
                    .ok());
    if (with_inverse) {
      ASSERT_TRUE(RelationFile::Build(ctx_.buffers.get(), ctx_.inv_data,
                                      ctx_.inv_index, ReverseArcs(arcs),
                                      &ctx_.inverse)
                      .ok());
    }
    ctx_.buffers->FlushAll();
    ctx_.buffers->DiscardAll();
    ctx_.pager.SetPhase(Phase::kRestructuring);
  }

  RunContext ctx_;
};

TEST_F(RestructureTest, FullClosureCoversWholeGraph) {
  const ArcList arcs = {{0, 1}, {1, 2}, {3, 4}};
  Build(arcs, 6);
  RestructureResult rs;
  ASSERT_TRUE(DiscoverAndSort(&ctx_, QuerySpec::Full(), false, &rs).ok());
  EXPECT_EQ(rs.NumMagicNodes(), 6);
  EXPECT_EQ(rs.NumMagicArcs(), 3);
  EXPECT_EQ(rs.topo_order.size(), 6u);
  // Topological consistency.
  for (const Arc& arc : arcs) {
    EXPECT_LT(rs.topo_pos[arc.src], rs.topo_pos[arc.dst]);
  }
  // Levels per the paper's definition.
  EXPECT_EQ(rs.levels[2], 1);
  EXPECT_EQ(rs.levels[1], 2);
  EXPECT_EQ(rs.levels[0], 3);
  EXPECT_EQ(rs.levels[5], 1);
}

TEST_F(RestructureTest, MagicSubgraphForSelection) {
  //     0 -> 1 -> 2
  //     3 -> 4        5 (isolated)
  const ArcList arcs = {{0, 1}, {1, 2}, {3, 4}};
  Build(arcs, 6);
  RestructureResult rs;
  ASSERT_TRUE(
      DiscoverAndSort(&ctx_, QuerySpec::Partial({1, 3}), false, &rs).ok());
  EXPECT_EQ(rs.magic_nodes, (std::vector<NodeId>{1, 2, 3, 4}));
  EXPECT_FALSE(rs.in_magic[0]);
  EXPECT_FALSE(rs.in_magic[5]);
  EXPECT_TRUE(rs.is_source[1]);
  EXPECT_TRUE(rs.is_source[3]);
  EXPECT_FALSE(rs.is_source[2]);
  EXPECT_EQ(rs.NumMagicArcs(), 2);  // arc (0,1) is outside the magic graph
  EXPECT_EQ(rs.topo_order.size(), 4u);
  EXPECT_EQ(rs.topo_pos[0], -1);
}

TEST_F(RestructureTest, SingleParentReductionPaperExample) {
  // Paper Figure 1(b)/3 in spirit: d has a single parent a and children
  // f, g; after reduction a adopts f and g and d becomes a sink.
  // ids: a=0, d=1, f=2, g=3, source set {0}.
  const ArcList arcs = {{0, 1}, {1, 2}, {1, 3}};
  Build(arcs, 4);
  RestructureResult rs;
  ASSERT_TRUE(
      DiscoverAndSort(&ctx_, QuerySpec::Partial({0}), true, &rs).ok());
  // d (=1) reduced to a sink; a (=0) adopted f and g.
  EXPECT_EQ(rs.graph.OutDegree(1), 0);
  const auto adopted = rs.graph.Successors(0);
  EXPECT_EQ(std::vector<NodeId>(adopted.begin(), adopted.end()),
            (std::vector<NodeId>{1, 2, 3}));
}

TEST_F(RestructureTest, SingleParentReductionSkipsSources) {
  // A source node is never reduced even if single-parent (paper: "node e
  // is not reduced since it is in S").
  const ArcList arcs = {{0, 1}, {1, 2}};
  Build(arcs, 3);
  RestructureResult rs;
  ASSERT_TRUE(
      DiscoverAndSort(&ctx_, QuerySpec::Partial({0, 1}), true, &rs).ok());
  EXPECT_EQ(rs.graph.OutDegree(1), 1);  // 1 keeps its child
}

TEST_F(RestructureTest, SingleParentReductionCascades) {
  // Chain 0 -> 1 -> 2 -> 3 with source {0}: 1 is reduced into 0, then 2
  // (now a child of 0 with that single parent) is reduced too, etc.
  const ArcList arcs = {{0, 1}, {1, 2}, {2, 3}};
  Build(arcs, 4);
  RestructureResult rs;
  ASSERT_TRUE(
      DiscoverAndSort(&ctx_, QuerySpec::Partial({0}), true, &rs).ok());
  EXPECT_EQ(rs.graph.OutDegree(0), 3);
  EXPECT_EQ(rs.graph.OutDegree(1), 0);
  EXPECT_EQ(rs.graph.OutDegree(2), 0);
}

TEST_F(RestructureTest, ReductionPreservesSourceReachability) {
  const GeneratorParams params{400, 3, 60, 77};
  const ArcList arcs = GenerateDag(params);
  Build(arcs, params.num_nodes);
  const std::vector<NodeId> sources = SampleSourceNodes(400, 6, 5);
  RestructureResult plain, reduced;
  ASSERT_TRUE(DiscoverAndSort(&ctx_, QuerySpec::Partial(sources), false,
                              &plain)
                  .ok());
  ASSERT_TRUE(DiscoverAndSort(&ctx_, QuerySpec::Partial(sources), true,
                              &reduced)
                  .ok());
  EXPECT_LE(reduced.NumMagicArcs(), plain.NumMagicArcs());
  for (const NodeId s : sources) {
    EXPECT_EQ(ReachableFrom(reduced.graph, {s}),
              ReachableFrom(plain.graph, {s}))
        << "source " << s;
  }
}

TEST_F(RestructureTest, InitialListsMatchAdjacency) {
  const ArcList arcs = GenerateDag({200, 4, 50, 3});
  Build(arcs, 200);
  ctx_.options.list_policy = ListPolicy::kMoveSelf;
  RestructureResult rs;
  ASSERT_TRUE(DiscoverAndSort(&ctx_, QuerySpec::Full(), false, &rs).ok());
  ASSERT_TRUE(WriteInitialLists(&ctx_, rs).ok());
  ASSERT_EQ(ctx_.succ->num_lists(), 200);
  for (size_t pos = 0; pos < rs.topo_order.size(); ++pos) {
    std::vector<int32_t> content;
    ASSERT_TRUE(ctx_.succ->Read(static_cast<int32_t>(pos), &content).ok());
    const auto expected = rs.graph.Successors(rs.topo_order[pos]);
    std::sort(content.begin(), content.end());
    ASSERT_EQ(content.size(), expected.size());
    EXPECT_TRUE(std::equal(content.begin(), content.end(), expected.begin()));
  }
}

TEST_F(RestructureTest, PredecessorListsMatchReversedAdjacency) {
  const ArcList arcs = GenerateDag({200, 4, 50, 9});
  Build(arcs, 200, /*with_inverse=*/true);
  const Digraph reversed = Digraph(200, arcs).Reversed();
  for (const bool dual : {false, true}) {
    RestructureResult rs;
    ASSERT_TRUE(DiscoverAndSort(&ctx_, QuerySpec::Full(), false, &rs).ok());
    std::vector<int32_t> pred_list_of;
    ASSERT_TRUE(BuildPredecessorLists(&ctx_, rs, dual, &pred_list_of).ok());
    for (NodeId v = 0; v < 200; v += 11) {
      std::vector<int32_t> preds;
      ASSERT_TRUE(ctx_.pred->Read(pred_list_of[v], &preds).ok());
      std::sort(preds.begin(), preds.end());
      const auto expected = reversed.Successors(v);
      ASSERT_EQ(preds.size(), expected.size()) << "dual=" << dual;
      EXPECT_TRUE(std::equal(preds.begin(), preds.end(), expected.begin()));
    }
  }
}

TEST_F(RestructureTest, DualBuildIsSequentialJkbBuildIsNot) {
  // The I/O signature that explains Figure 7: building predecessor lists
  // from the inverse relation (JKB2) costs far less than from the
  // source-clustered relation (JKB) on a dense graph.
  const ArcList arcs = GenerateDag({1000, 20, 1000, 13});
  Build(arcs, 1000, /*with_inverse=*/true, /*frames=*/10);

  RestructureResult rs;
  ASSERT_TRUE(DiscoverAndSort(&ctx_, QuerySpec::Full(), false, &rs).ok());
  std::vector<int32_t> pred_list_of;

  ctx_.pager.ResetStats();
  ASSERT_TRUE(BuildPredecessorLists(&ctx_, rs, /*dual=*/true, &pred_list_of)
                  .ok());
  const uint64_t dual_io = ctx_.pager.stats().Total().total();

  ctx_.pager.ResetStats();
  ASSERT_TRUE(BuildPredecessorLists(&ctx_, rs, /*dual=*/false, &pred_list_of)
                  .ok());
  const uint64_t scan_io = ctx_.pager.stats().Total().total();

  EXPECT_GT(scan_io, 3 * dual_io);
}

}  // namespace
}  // namespace tcdb
