// Incremental tier under concurrency (ctest labels: `dynamic` and
// `concurrency`; check.sh reruns this binary under ThreadSanitizer).
// The races covered:
//   - the background IndexRebuilder polling the incremental tier's
//     rebuild_advised() atomic (its only cross-thread read) while the
//     owner thread repairs trees inside mutations,
//   - advise-driven rebuilds publishing snapshots into the owner's
//     adoption slot while the incremental tier keeps deciding queries,
//   - rebuilt cores hot-swapped into a ReachServer (SwapCore) under
//     client traffic fed by an incremental-tier mutation stream.
// Every served answer is diffed against an in-memory mirror; snapshot
// epochs must be monotone (a regression would mean a torn or stale
// publication).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <unordered_set>
#include <utility>
#include <vector>

#include "dynamic/dynamic_reach_service.h"
#include "dynamic/index_rebuilder.h"
#include "dynamic/mutation_log.h"
#include "graph/digraph.h"
#include "reach/reach_server.h"
#include "util/random.h"

namespace tcdb {
namespace {

// Plain BFS over a mutable mirror — the reference side of the diffs.
class Mirror {
 public:
  explicit Mirror(NodeId n) : adjacency_(static_cast<size_t>(n)) {}

  bool Has(NodeId u, NodeId v) const {
    return adjacency_[static_cast<size_t>(u)].contains(v);
  }
  void Insert(NodeId u, NodeId v) {
    adjacency_[static_cast<size_t>(u)].insert(v);
    live_.push_back(Arc{u, v});
  }
  void Delete(size_t pick) {
    const Arc victim = live_[pick];
    adjacency_[static_cast<size_t>(victim.src)].erase(victim.dst);
    live_[pick] = live_.back();
    live_.pop_back();
  }
  const std::vector<Arc>& live() const { return live_; }

  bool Reaches(NodeId u, NodeId v) const {
    if (u == v) return true;
    std::vector<bool> visited(adjacency_.size(), false);
    std::vector<NodeId> frontier = {u};
    visited[static_cast<size_t>(u)] = true;
    while (!frontier.empty()) {
      const NodeId x = frontier.back();
      frontier.pop_back();
      for (const NodeId y : adjacency_[static_cast<size_t>(x)]) {
        if (y == v) return true;
        if (!visited[static_cast<size_t>(y)]) {
          visited[static_cast<size_t>(y)] = true;
          frontier.push_back(y);
        }
      }
    }
    return false;
  }

 private:
  std::vector<std::unordered_set<NodeId>> adjacency_;
  std::vector<Arc> live_;
};

// The owner thread mutates and queries with the incremental tier ON
// while the rebuilder thread races it, publishing snapshots triggered
// ONLY by the tier's advise flag (the epoch-batch threshold is parked
// out of reach) — so the test fails if the cross-thread advise read
// tears, deadlocks, or never fires.
TEST(IncrementalRebuilderRaceTest, AdviseDrivenRebuildStaysExactAndMonotone) {
  constexpr NodeId kNodes = 64;
  auto log = MutationLog::Open({{0, 1}}, kNodes);
  ASSERT_TRUE(log.ok());

  DynamicReachOptions options;
  // A tight repair budget keeps the advise flag flipping throughout the
  // trace instead of once at the end.
  options.incremental_options.rebuild_cost_ratio = 0.5;
  auto service = DynamicReachService::Create(log.value().get(), options);
  ASSERT_TRUE(service.ok());
  DynamicReachService* serving = service.value().get();

  IndexRebuilderOptions rebuild_options;
  rebuild_options.mutations_per_rebuild = 1'000'000;  // advise-only trigger
  rebuild_options.poll_interval = std::chrono::milliseconds(1);
  rebuild_options.rebuild_advised = [serving] {
    return serving->RebuildAdvised();
  };
  IndexRebuilder rebuilder(
      log.value().get(),
      [serving](std::shared_ptr<const ReachCore> core,
                MutationLog::Epoch epoch, double seconds) {
        serving->PublishSnapshot(std::move(core), epoch, seconds);
      },
      rebuild_options);
  rebuilder.Start();

  Mirror mirror(kNodes);
  mirror.Insert(0, 1);
  Rng rng(777);
  int mismatches = 0;
  MutationLog::Epoch last_snapshot_epoch = serving->snapshot_epoch();
  int epoch_regressions = 0;
  for (int op = 0; op < 3000; ++op) {
    const double roll = rng.NextDouble();
    if (roll < 0.30) {
      const NodeId u = static_cast<NodeId>(rng.Uniform(0, kNodes - 1));
      const NodeId v = static_cast<NodeId>(rng.Uniform(0, kNodes - 1));
      if (u != v && !mirror.Has(u, v)) {
        ASSERT_TRUE(serving->InsertArc(u, v).ok());
        mirror.Insert(u, v);
      }
    } else if (roll < 0.50 && !mirror.live().empty()) {
      const size_t pick = static_cast<size_t>(rng.Uniform(
          0, static_cast<int64_t>(mirror.live().size()) - 1));
      const Arc victim = mirror.live()[pick];
      ASSERT_TRUE(serving->DeleteArc(victim.src, victim.dst).ok());
      mirror.Delete(pick);
    } else {
      const NodeId u = static_cast<NodeId>(rng.Uniform(0, kNodes - 1));
      const NodeId v = static_cast<NodeId>(rng.Uniform(0, kNodes - 1));
      auto answer = serving->Query(u, v);
      ASSERT_TRUE(answer.ok());
      if (answer.value().reachable != mirror.Reaches(u, v)) ++mismatches;
      // Adoption happens inside Query; the adopted epoch must only move
      // forward.
      if (serving->snapshot_epoch() < last_snapshot_epoch) {
        ++epoch_regressions;
      }
      last_snapshot_epoch = serving->snapshot_epoch();
    }
  }
  // The advise hook is the only enabled trigger, so a published rebuild
  // proves the estimator fired across threads. The flag is necessarily
  // set by now (the trace's repair cost dwarfs the 0.5 ratio budget and
  // a reset needs an adoption, which needs a publish), so the poller
  // lands one within a few intervals.
  for (int spin = 0; rebuilder.rebuilds_published() == 0 && spin < 5000;
       ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  rebuilder.Stop();
  serving->AdoptPublishedSnapshot();  // drain the publication slot
  EXPECT_EQ(mismatches, 0);
  EXPECT_EQ(epoch_regressions, 0);
  EXPECT_GT(rebuilder.rebuilds_published(), 0);
  EXPECT_GT(serving->stats().snapshots_adopted, 0);
  EXPECT_GE(serving->stats().incremental_rebuilds_advised, 1);
  EXPECT_GT(serving->stats().incremental_served, 0);
  EXPECT_TRUE(log.value()->buffers()->AuditNoPins().ok());
}

// The sharded-serving variant: the owner drives an insert-only mutation
// stream through the incremental tier while the rebuilder publishes every
// core BOTH into the owner's service and into a ReachServer via SwapCore.
// Client threads hammer chain probes on the server; per-shard adoption
// order makes each thread's answer stream monotone (YES never regresses
// to NO), and the final state must reflect the full chain.
TEST(IncrementalSwapTest, RebuiltCoresHotSwapMonotonicallyUnderClients) {
  constexpr NodeId kNodes = 96;
  constexpr int kClients = 3;
  constexpr int kChain = 40;

  auto log = MutationLog::Open({}, kNodes);
  ASSERT_TRUE(log.ok());
  DynamicReachOptions options;
  // Pivots on the chain so the incremental tier can decide the owner's
  // probes once the chain grows past them.
  options.incremental_options.pinned_pivots = {10, 20};
  auto service = DynamicReachService::Create(log.value().get(), options);
  ASSERT_TRUE(service.ok());
  DynamicReachService* serving = service.value().get();

  auto server = ReachServer::Start(ArcList{}, kNodes);
  ASSERT_TRUE(server.ok());
  ReachServer* server_ptr = server.value().get();

  IndexRebuilderOptions rebuild_options;
  rebuild_options.mutations_per_rebuild = 1;  // publish at every chance
  rebuild_options.poll_interval = std::chrono::milliseconds(1);
  rebuild_options.rebuild_advised = [serving] {
    return serving->RebuildAdvised();
  };
  IndexRebuilder rebuilder(
      log.value().get(),
      [serving, server_ptr](std::shared_ptr<const ReachCore> core,
                            MutationLog::Epoch epoch, double seconds) {
        serving->PublishSnapshot(core, epoch, seconds);
        // Monotone-epoch swap into the sharded server; the rebuilder
        // never republishes an epoch, so this must always validate.
        TCDB_CHECK(server_ptr->SwapCore(std::move(core), epoch).ok());
      },
      rebuild_options);
  rebuilder.Start();

  std::atomic<bool> stop{false};
  std::atomic<int> violations{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&] {
      std::vector<bool> seen_yes(kChain, false);
      while (!stop.load(std::memory_order_relaxed)) {
        for (int j = 1; j < kChain; ++j) {
          auto answer = server_ptr->Query(0, static_cast<NodeId>(j));
          if (!answer.ok()) {
            violations.fetch_add(1000);
            return;
          }
          if (answer.value().reachable) {
            seen_yes[static_cast<size_t>(j)] = true;
          } else if (seen_yes[static_cast<size_t>(j)]) {
            violations.fetch_add(1);
          }
        }
      }
    });
  }

  // Owner: grow the chain one arc at a time, confirming each link
  // through its own (incremental-tier) ladder as it goes.
  for (int j = 0; j + 1 < kChain; ++j) {
    ASSERT_TRUE(serving
                    ->InsertArc(static_cast<NodeId>(j),
                                static_cast<NodeId>(j + 1))
                    .ok());
    auto answer = serving->Query(0, static_cast<NodeId>(j + 1));
    ASSERT_TRUE(answer.ok());
    EXPECT_TRUE(answer.value().reachable);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  // Let the final rebuild land, then stop the clients.
  while (rebuilder.published_epoch() < log.value()->current_epoch()) {
    ASSERT_TRUE(rebuilder.RebuildNow().ok());
  }
  stop.store(true);
  for (std::thread& t : clients) t.join();
  rebuilder.Stop();

  EXPECT_EQ(violations.load(), 0);
  for (int j = 1; j < kChain; ++j) {
    auto answer = server_ptr->Query(0, static_cast<NodeId>(j));
    ASSERT_TRUE(answer.ok());
    EXPECT_TRUE(answer.value().reachable) << "0 -> " << j;
  }
  EXPECT_EQ(server_ptr->Snapshot().published_epoch,
            log.value()->current_epoch());
}

}  // namespace
}  // namespace tcdb
