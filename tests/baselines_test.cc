// Focused baseline tests beyond the cross-algorithm correctness sweep:
// Seminaive iteration structure and the paged bit-matrix variants.

#include <gtest/gtest.h>

#include <string>

#include "core/bit_matrix.h"
#include "core/database.h"
#include "graph/algorithms.h"
#include "graph/generator.h"

namespace tcdb {
namespace {

TEST(SeminaiveTest, TuplesGeneratedCountsDerivations) {
  // On a chain 0->1->2->3, seminaive from {0} derives (0,1), then (0,2),
  // then (0,3): exactly 3 generated, 3 inserted, no duplicates.
  ArcList arcs = {{0, 1}, {1, 2}, {2, 3}};
  auto db = TcDatabase::Create(arcs, 4);
  ASSERT_TRUE(db.ok());
  auto run = db.value()->Execute(Algorithm::kSeminaive,
                                 QuerySpec::Partial({0}), {});
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(run.value().metrics.tuples_generated, 3);
  EXPECT_EQ(run.value().metrics.tuples_inserted, 3);
  EXPECT_EQ(run.value().metrics.selected_tuples, 3);
}

TEST(SeminaiveTest, DuplicatePathsAreGeneratedButNotInserted) {
  // Diamond: (0,3) is derived twice (via 1 and via 2) but inserted once.
  ArcList arcs = {{0, 1}, {0, 2}, {1, 3}, {2, 3}};
  auto db = TcDatabase::Create(arcs, 4);
  ASSERT_TRUE(db.ok());
  auto run = db.value()->Execute(Algorithm::kSeminaive,
                                 QuerySpec::Partial({0}), {});
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(run.value().metrics.tuples_generated, 4);  // 1, 2, 3, 3
  EXPECT_EQ(run.value().metrics.tuples_inserted, 3);
  EXPECT_EQ(run.value().metrics.duplicates(), 1);
}

TEST(MatrixVariantsTest, AllThreeAgreeOnRandomGraphs) {
  for (uint64_t seed = 1; seed <= 3; ++seed) {
    const GeneratorParams params{150, 4, 40, seed};
    const ArcList arcs = GenerateDag(params);
    auto db = TcDatabase::Create(arcs, params.num_nodes);
    ASSERT_TRUE(db.ok());
    ExecOptions options;
    options.buffer_pages = 8;
    options.capture_answer = true;
    auto warshall =
        db.value()->Execute(Algorithm::kWarshall, QuerySpec::Full(), options);
    auto warren =
        db.value()->Execute(Algorithm::kWarren, QuerySpec::Full(), options);
    auto blocked = db.value()->Execute(Algorithm::kWarrenBlocked,
                                       QuerySpec::Full(), options);
    ASSERT_TRUE(warshall.ok());
    ASSERT_TRUE(warren.ok());
    ASSERT_TRUE(blocked.ok());
    EXPECT_EQ(warshall.value().answer, warren.value().answer);
    EXPECT_EQ(warren.value().answer, blocked.value().answer);
    // Blocked Warren performs the same unions in the same order.
    EXPECT_EQ(warren.value().metrics.list_unions,
              blocked.value().metrics.list_unions);
  }
}

TEST(MatrixVariantsTest, BlockingReducesMissesNotUnions) {
  const GeneratorParams params{800, 5, 200, 4};
  auto db = TcDatabase::Create(GenerateDag(params), params.num_nodes);
  ASSERT_TRUE(db.ok());
  ExecOptions options;
  options.buffer_pages = 10;
  auto warren =
      db.value()->Execute(Algorithm::kWarren, QuerySpec::Full(), options);
  auto blocked = db.value()->Execute(Algorithm::kWarrenBlocked,
                                     QuerySpec::Full(), options);
  ASSERT_TRUE(warren.ok());
  ASSERT_TRUE(blocked.ok());
  EXPECT_EQ(warren.value().metrics.list_unions,
            blocked.value().metrics.list_unions);
  EXPECT_LE(blocked.value().metrics.TotalIo(),
            warren.value().metrics.TotalIo());
}

TEST(MatrixVariantsTest, TailWordColumnsAreExactAtUnalignedSizes) {
  // Regression for the tail-word masking bug: at n % 64 != 0 the last
  // word of each packed row has 64 - n%64 slack bits, and any garbage
  // there used to leak into whole-word unions and popcounts — visible as
  // phantom successors at columns >= n or inflated distinct counts. Pin
  // the full closure against the reference at two unaligned sizes, for
  // all three matrix variants and every kernel backend.
  for (const NodeId n : {67, 127}) {
    const GeneratorParams params{n, 4, n / 2, static_cast<uint64_t>(n)};
    const ArcList arcs = GenerateDag(params);
    const auto expected = ReferenceClosure(Digraph(n, arcs));
    int64_t expected_tuples = 0;
    for (const auto& row : expected) {
      expected_tuples += static_cast<int64_t>(row.size());
    }
    auto db = TcDatabase::Create(arcs, n);
    ASSERT_TRUE(db.ok());
    for (const Algorithm algorithm :
         {Algorithm::kWarshall, Algorithm::kWarren,
          Algorithm::kWarrenBlocked}) {
      for (const BitKernelBackend backend :
           {BitKernelBackend::kScalar, BitKernelBackend::kUint64,
            BitKernelBackend::kAvx2, BitKernelBackend::kAuto}) {
        SCOPED_TRACE(std::string(AlgorithmName(algorithm)) + "/" +
                     BitKernelBackendName(backend) + "/n=" +
                     std::to_string(n));
        ExecOptions options;
        options.buffer_pages = 8;
        options.capture_answer = true;
        options.matrix_backend = backend;
        auto run =
            db.value()->Execute(algorithm, QuerySpec::Full(), options);
        ASSERT_TRUE(run.ok());
        ASSERT_EQ(run.value().answer.size(), static_cast<size_t>(n));
        for (const auto& [node, successors] : run.value().answer) {
          EXPECT_EQ(successors, expected[node]) << "node " << node;
          if (!successors.empty()) {
            EXPECT_LT(successors.back(), n);  // no phantom tail columns
          }
        }
        EXPECT_EQ(run.value().metrics.distinct_tuples, expected_tuples);
      }
    }
  }
}

TEST(MatrixVariantsTest, BackendSwapLeavesModelMetricsUntouched) {
  // The kernel backend may only change CPU cost: page I/O, tuple counts
  // and union counts are model quantities and must be bit-identical
  // across scalar / uint64 / AVX2 / auto.
  const GeneratorParams params{300, 5, 75, 6};
  auto db = TcDatabase::Create(GenerateDag(params), params.num_nodes);
  ASSERT_TRUE(db.ok());
  for (const Algorithm algorithm :
       {Algorithm::kWarshall, Algorithm::kWarren,
        Algorithm::kWarrenBlocked}) {
    ExecOptions options;
    options.buffer_pages = 10;
    options.matrix_backend = BitKernelBackend::kScalar;
    auto reference =
        db.value()->Execute(algorithm, QuerySpec::Full(), options);
    ASSERT_TRUE(reference.ok());
    const RunMetrics& ref = reference.value().metrics;
    for (const BitKernelBackend backend :
         {BitKernelBackend::kUint64, BitKernelBackend::kAvx2,
          BitKernelBackend::kAuto}) {
      SCOPED_TRACE(std::string(AlgorithmName(algorithm)) + "/" +
                   BitKernelBackendName(backend));
      options.matrix_backend = backend;
      auto run = db.value()->Execute(algorithm, QuerySpec::Full(), options);
      ASSERT_TRUE(run.ok());
      const RunMetrics& m = run.value().metrics;
      EXPECT_EQ(m.restructure_reads, ref.restructure_reads);
      EXPECT_EQ(m.restructure_writes, ref.restructure_writes);
      EXPECT_EQ(m.compute_reads, ref.compute_reads);
      EXPECT_EQ(m.compute_writes, ref.compute_writes);
      EXPECT_EQ(m.list_unions, ref.list_unions);
      EXPECT_EQ(m.tuples_generated, ref.tuples_generated);
      EXPECT_EQ(m.distinct_tuples, ref.distinct_tuples);
      EXPECT_EQ(m.selected_tuples, ref.selected_tuples);
    }
  }
}

TEST(MatrixVariantsTest, MatrixHandlesWideRows) {
  // n > 16384 bits would exceed a page per row; our study graphs stay far
  // below that, but one row per page (n between 8192 and 16384 bits) must
  // still work. Use a modest n that forces few rows per page instead.
  const GeneratorParams params{3000, 1, 100, 5};
  const ArcList arcs = GenerateDag(params);
  auto db = TcDatabase::Create(arcs, params.num_nodes);
  ASSERT_TRUE(db.ok());
  ExecOptions options;
  options.buffer_pages = 12;
  options.capture_answer = true;
  auto run =
      db.value()->Execute(Algorithm::kWarren, QuerySpec::Partial({0}), options);
  ASSERT_TRUE(run.ok());
  const auto expected =
      ReferencePartialClosure(Digraph(params.num_nodes, arcs), {0});
  ASSERT_EQ(run.value().answer.size(), 1u);
  EXPECT_EQ(run.value().answer[0].second, expected[0]);
}

}  // namespace
}  // namespace tcdb
