#ifndef TCDB_TESTS_SCALE_ORACLE_H_
#define TCDB_TESTS_SCALE_ORACLE_H_

// Sampled differential oracle for large graphs. The full ReferenceClosure
// is O(n^2) time and memory — exactly the wall the scale substrate
// removes, so scale tests must not reintroduce it through their oracle.
// Instead, K sources are sampled deterministically, their exact cones are
// computed with ReferencePartialClosure (K BFS passes), and the index
// under test is probed on every (source, v) pair: K*n O(1) probes, linear
// in the graph, independent of the closure size.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "graph/algorithms.h"
#include "graph/digraph.h"
#include "graph/generator.h"

namespace tcdb {

// `reaches(u, v)` must implement reflexive reachability on `graph`'s own
// node ids (callers serving from a condensation translate through their
// node map first). Deterministic in `seed`.
template <typename ReachesFn>
::testing::AssertionResult VerifySampledReachability(
    const Digraph& graph, int32_t num_sources, uint64_t seed,
    const ReachesFn& reaches) {
  const NodeId n = graph.NumNodes();
  if (n == 0) return ::testing::AssertionSuccess();
  const std::vector<NodeId> sources = SampleSourceNodes(
      n, std::min(num_sources, static_cast<int32_t>(n)), seed);
  const std::vector<std::vector<NodeId>> cones =
      ReferencePartialClosure(graph, sources);
  for (size_t i = 0; i < sources.size(); ++i) {
    const NodeId u = sources[i];
    const std::vector<NodeId>& cone = cones[i];
    for (NodeId v = 0; v < n; ++v) {
      const bool expected =
          u == v || std::binary_search(cone.begin(), cone.end(), v);
      const bool actual = reaches(u, v);
      if (actual != expected) {
        return ::testing::AssertionFailure()
               << "reaches(" << u << ", " << v << ") = "
               << (actual ? "true" : "false") << ", reference says "
               << (expected ? "true" : "false");
      }
    }
  }
  return ::testing::AssertionSuccess();
}

}  // namespace tcdb

#endif  // TCDB_TESTS_SCALE_ORACLE_H_
