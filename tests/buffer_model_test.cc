// Model-based randomized test of the BufferManager: a reference model
// (explicit disk array + cache map) mirrors every operation; the contents
// observed through the pool must match the model at every read, across all
// replacement policies. This is the substrate the whole study's I/O
// accounting stands on.

#include <gtest/gtest.h>

#include <map>

#include "storage/buffer_manager.h"
#include "util/random.h"

namespace tcdb {
namespace {

constexpr int kNumPages = 24;
constexpr size_t kFrames = 6;

class Model {
 public:
  Model() : disk_(kNumPages, 0) {}

  // Mirrors FetchPage+mutate+Unpin. Returns the value the pool must have
  // seen before the mutation.
  int64_t FetchMutateUnpin(int page, int64_t new_value) {
    auto [it, inserted] = cache_.try_emplace(page, CacheEntry{disk_[page], false});
    const int64_t seen = it->second.value;
    it->second.value = new_value;
    it->second.dirty = true;
    return seen;
  }

  int64_t FetchReadUnpin(int page) {
    auto [it, inserted] = cache_.try_emplace(page, CacheEntry{disk_[page], false});
    return it->second.value;
  }

  // The pool may evict any unpinned page at any time; eviction writes
  // dirty data to disk. The model cannot know which page the policy
  // picked, so it treats every cached entry as *possibly* evicted: to stay
  // exact, it instead keeps everything "cached" and syncs on the
  // operations that force agreement (flushes). The trick that makes this
  // sound: an eviction in the real pool writes the dirty value to disk and
  // re-reads it on the next fetch — the observed value never changes. So
  // values observed through fetches are always cache_-consistent.
  void FlushAll() {
    for (auto& [page, entry] : cache_) {
      if (entry.dirty) {
        disk_[page] = entry.value;
        entry.dirty = false;
      }
    }
  }

  void FlushPage(int page) {
    auto it = cache_.find(page);
    if (it != cache_.end() && it->second.dirty) {
      disk_[page] = it->second.value;
      it->second.dirty = false;
    }
  }

  void DiscardPage(int page) {
    // Unflushed modifications are lost; the next fetch sees disk.
    cache_.erase(page);
  }

  int64_t DirectDiskRead(int page) const { return disk_[page]; }

 private:
  struct CacheEntry {
    int64_t value;
    bool dirty;
  };
  std::vector<int64_t> disk_;
  std::map<int, CacheEntry> cache_;
};

class BufferModelTest : public testing::TestWithParam<PagePolicy> {};

TEST_P(BufferModelTest, RandomOperationSequenceMatchesModel) {
  Pager pager;
  const FileId file = pager.CreateFile("data");
  for (int i = 0; i < kNumPages; ++i) pager.AllocatePage(file);
  BufferManager buffers(&pager, kFrames, GetParam(), /*seed=*/99);
  Model model;
  Rng rng(static_cast<uint64_t>(GetParam()) * 1000 + 5);
  int64_t direct_reads = 0;  // verification reads that bypass the pool

  for (int step = 0; step < 20000; ++step) {
    const int page = static_cast<int>(rng.Uniform(0, kNumPages - 1));
    const PageId id{file, static_cast<PageNumber>(page)};
    const int op = static_cast<int>(rng.Uniform(0, 99));
    if (op < 45) {
      // Fetch, verify, mutate, unpin dirty.
      auto fetched = buffers.FetchPage(id);
      ASSERT_TRUE(fetched.ok());
      const int64_t new_value = rng.Uniform(0, 1 << 20);
      const int64_t seen = *fetched.value()->As<int64_t>(0);
      const int64_t expected = model.FetchMutateUnpin(page, new_value);
      ASSERT_EQ(seen, expected) << "step " << step << " page " << page;
      *fetched.value()->As<int64_t>(0) = new_value;
      buffers.Unpin(id, /*dirty=*/true);
    } else if (op < 85) {
      // Fetch, verify, unpin clean.
      auto fetched = buffers.FetchPage(id);
      ASSERT_TRUE(fetched.ok());
      const int64_t seen = *fetched.value()->As<int64_t>(0);
      ASSERT_EQ(seen, model.FetchReadUnpin(page))
          << "step " << step << " page " << page;
      buffers.Unpin(id, /*dirty=*/false);
    } else if (op < 92) {
      buffers.FlushPage(id);
      model.FlushPage(page);
      // After an explicit flush the disk must agree.
      Page direct;
      pager.ReadPage(file, id.page_no, &direct);
      ++direct_reads;
      ASSERT_EQ(*direct.As<int64_t>(0), model.DirectDiskRead(page))
          << "step " << step;
    } else if (op < 97) {
      buffers.FlushAll();
      model.FlushAll();
    } else {
      // Discard drops unflushed modifications. To keep the model exact we
      // must know the page's disk state: flush first in BOTH, then
      // discard (i.e. model "discard after flush", which is the library's
      // safe usage pattern during write-out).
      buffers.FlushPage(id);
      model.FlushPage(page);
      buffers.DiscardPage(id);
      model.DiscardPage(page);
    }
  }
  // Final settlement: flush everything and compare the whole disk.
  buffers.FlushAll();
  model.FlushAll();
  for (int page = 0; page < kNumPages; ++page) {
    Page direct;
    pager.ReadPage(file, static_cast<PageNumber>(page), &direct);
    ++direct_reads;
    EXPECT_EQ(*direct.As<int64_t>(0), model.DirectDiskRead(page))
        << "page " << page;
  }
  // Global accounting invariant: every device read is either a buffer
  // miss or one of this test's direct verification reads.
  EXPECT_EQ(pager.stats().Total().reads,
            buffers.access_stats().Total().misses +
                static_cast<uint64_t>(direct_reads));
}

INSTANTIATE_TEST_SUITE_P(
    Policies, BufferModelTest,
    testing::Values(PagePolicy::kLru, PagePolicy::kMru, PagePolicy::kFifo,
                    PagePolicy::kClock, PagePolicy::kRandom),
    [](const testing::TestParamInfo<PagePolicy>& info) {
      return PagePolicyName(info.param);
    });

}  // namespace
}  // namespace tcdb
