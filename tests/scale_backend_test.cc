// The chain backend behind the serving stack: ReachCore/ReachService with
// ReachBackend::kChain must answer identically to the kLabels backend and
// the reference closure — including cyclic inputs through the
// SCC-condensation front — with every non-trivial query decided at the
// chain-frontier stage (no BFS or session fallback ever). Also covers the
// core image round trip, multi-threaded ReachServer clients over a chain
// core, and the dynamic rebuild pipeline with a chain-backend rebuilder.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "dynamic_trace.h"
#include "graph/algorithms.h"
#include "graph/digraph.h"
#include "graph/generator.h"
#include "graph/scale_generator.h"
#include "reach/reach_server.h"
#include "reach/reach_service.h"
#include "scale_oracle.h"
#include "util/codec.h"
#include "util/random.h"

namespace tcdb {
namespace {

ArcList CyclicPaperArcs(NodeId n, uint64_t seed) {
  GeneratorParams params;
  params.num_nodes = n;
  params.avg_out_degree = 4;
  params.locality = 50;
  params.seed = seed;
  return GenerateCyclicDigraph(params, /*num_back_arcs=*/n / 10);
}

TEST(ScaleBackendTest, ChainServiceMatchesLabelsAndReference) {
  const NodeId n = 300;
  const ArcList arcs = CyclicPaperArcs(n, 17);
  const Digraph graph(n, arcs);
  const std::vector<std::vector<NodeId>> closure = ReferenceClosure(graph);

  ReachServiceOptions chain_options;
  chain_options.index.backend = ReachBackend::kChain;
  chain_options.cache_capacity = 0;  // keep every stage visible
  auto chain_service = ReachService::Build(arcs, n, chain_options);
  ASSERT_TRUE(chain_service.ok()) << chain_service.status().ToString();

  ReachServiceOptions label_options;
  label_options.cache_capacity = 0;
  auto label_service = ReachService::Build(arcs, n, label_options);
  ASSERT_TRUE(label_service.ok()) << label_service.status().ToString();

  const ReachCore& core = chain_service.value()->core();
  EXPECT_EQ(core.backend, ReachBackend::kChain);
  EXPECT_TRUE(core.condensed());

  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = 0; v < n; ++v) {
      const bool expected =
          u == v || std::binary_search(closure[u].begin(), closure[u].end(), v);
      auto chain_answer = chain_service.value()->Query(u, v);
      ASSERT_TRUE(chain_answer.ok());
      ASSERT_EQ(chain_answer.value().reachable, expected)
          << "u=" << u << " v=" << v;
      auto label_answer = label_service.value()->Query(u, v);
      ASSERT_TRUE(label_answer.ok());
      ASSERT_EQ(label_answer.value().reachable, expected);
      // The chain backend is total: same condensation node decides
      // trivially, everything else at the chain frontier.
      if (core.node_map[u] == core.node_map[v]) {
        EXPECT_EQ(chain_answer.value().stage, ReachStage::kTrivial);
      } else {
        EXPECT_EQ(chain_answer.value().stage, ReachStage::kChainFrontier);
      }
    }
  }
  // No chain-backend query ever reached the BFS or session rungs.
  const ReachStats& stats = chain_service.value()->stats();
  EXPECT_EQ(stats.Decided(ReachStage::kPrunedBfs), 0);
  EXPECT_EQ(stats.Decided(ReachStage::kSessionFallback), 0);
  EXPECT_EQ(stats.Decided(ReachStage::kChainFrontier),
            stats.queries - stats.Decided(ReachStage::kTrivial));
}

TEST(ScaleBackendTest, ChainCoreSampledOnScaleFamilies) {
  for (const ScaleFamily family : kAllScaleFamilies) {
    ScaleGraphParams params;
    params.family = family;
    params.num_nodes = 12000;
    params.width = 24;
    params.degree = 3;
    params.locality = 96;
    params.num_back_arcs = 200;  // cyclic: exercises the condensation front
    params.seed = 29;
    const ArcList arcs = ScaleArcList(params);
    const Digraph graph(params.num_nodes, arcs);

    ReachIndexOptions options;
    options.backend = ReachBackend::kChain;
    auto core = ReachCore::Build(arcs, params.num_nodes, options);
    ASSERT_TRUE(core.ok()) << core.status().ToString();
    const ReachCore& c = *core.value();
    SCOPED_TRACE(ScaleFamilyName(family));
    EXPECT_TRUE(VerifySampledReachability(
        graph, /*num_sources=*/16, /*seed=*/7, [&c](NodeId u, NodeId v) {
          const NodeId cu = c.node_map[u];
          const NodeId cv = c.node_map[v];
          return cu == cv || c.chain.Reaches(cu, cv);
        }));
  }
}

TEST(ScaleBackendTest, ChainCoreImageRoundTrip) {
  const NodeId n = 500;
  const ArcList arcs = CyclicPaperArcs(n, 31);
  ReachIndexOptions options;
  options.backend = ReachBackend::kChain;
  auto core = ReachCore::Build(arcs, n, options);
  ASSERT_TRUE(core.ok()) << core.status().ToString();

  std::string image;
  core.value()->SerializeAppend(&image);
  codec::Reader reader(image.data(), image.size());
  auto restored = ReachCore::Deserialize(&reader);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(reader.remaining(), 0u);
  EXPECT_EQ(restored.value()->backend, ReachBackend::kChain);
  EXPECT_EQ(restored.value()->chain.num_nodes(), core.value()->dag.NumNodes());

  // Query-identical across the round trip, bit-identical when re-imaged.
  for (NodeId u = 0; u < n; u += 3) {
    for (NodeId v = 0; v < n; v += 5) {
      ASSERT_EQ(restored.value()->DecideCondensed(restored.value()->node_map[u],
                                                  restored.value()->node_map[v],
                                                  nullptr),
                core.value()->DecideCondensed(core.value()->node_map[u],
                                              core.value()->node_map[v],
                                              nullptr))
          << "u=" << u << " v=" << v;
    }
  }
  std::string reimage;
  restored.value()->SerializeAppend(&reimage);
  EXPECT_EQ(image, reimage);
}

TEST(ScaleBackendTest, ChainCoreRejectsTruncatedImage) {
  const ArcList arcs = CyclicPaperArcs(200, 3);
  ReachIndexOptions options;
  options.backend = ReachBackend::kChain;
  auto core = ReachCore::Build(arcs, 200, options);
  ASSERT_TRUE(core.ok());
  std::string image;
  core.value()->SerializeAppend(&image);
  for (const size_t cut :
       {size_t{0}, size_t{4}, image.size() / 2, image.size() - 1}) {
    codec::Reader truncated(image.data(), cut);
    EXPECT_EQ(ReachCore::Deserialize(&truncated).status().code(),
              StatusCode::kCorruption)
        << "cut=" << cut;
  }
}

// Multi-threaded serving over one shared chain core: concurrent client
// threads fire batches at a sharded ReachServer while every answer is
// checked against the reference closure.
TEST(ScaleBackendTest, ServerOverChainCoreUnderConcurrentClients) {
  const NodeId n = 400;
  const ArcList arcs = CyclicPaperArcs(n, 53);
  const Digraph graph(n, arcs);
  const std::vector<std::vector<NodeId>> closure = ReferenceClosure(graph);

  ReachServerOptions options;
  options.service.index.backend = ReachBackend::kChain;
  options.num_shards = 4;
  auto server = ReachServer::Start(arcs, n, options);
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  EXPECT_EQ(server.value()->core().backend, ReachBackend::kChain);

  constexpr int kClients = 4;
  constexpr int kBatchesPerClient = 25;
  constexpr int kBatchSize = 64;
  std::vector<std::thread> clients;
  std::vector<std::string> failures(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      Rng rng(1000 + c);
      for (int b = 0; b < kBatchesPerClient; ++b) {
        std::vector<std::pair<NodeId, NodeId>> pairs;
        pairs.reserve(kBatchSize);
        for (int i = 0; i < kBatchSize; ++i) {
          pairs.emplace_back(static_cast<NodeId>(rng.Uniform(0, n - 1)),
                             static_cast<NodeId>(rng.Uniform(0, n - 1)));
        }
        auto answers = server.value()->QueryBatch(pairs);
        if (!answers.ok()) {
          failures[c] = answers.status().ToString();
          return;
        }
        for (size_t i = 0; i < pairs.size(); ++i) {
          const auto [u, v] = pairs[i];
          const bool expected =
              u == v ||
              std::binary_search(closure[u].begin(), closure[u].end(), v);
          if (answers.value()[i].reachable != expected) {
            failures[c] = "mismatch at (" + std::to_string(u) + ", " +
                          std::to_string(v) + ")";
            return;
          }
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  for (int c = 0; c < kClients; ++c) {
    EXPECT_TRUE(failures[c].empty()) << "client " << c << ": " << failures[c];
  }
  // The chain backend served everything without fallback rungs.
  const ReachServerStats stats = server.value()->Snapshot();
  EXPECT_EQ(stats.merged.queries,
            int64_t{kClients} * kBatchesPerClient * kBatchSize);
  EXPECT_EQ(stats.merged.Decided(ReachStage::kPrunedBfs), 0);
  EXPECT_EQ(stats.merged.Decided(ReachStage::kSessionFallback), 0);
}

// The dynamic rebuild pipeline with a chain-backend rebuilder: the
// IndexRebuilder periodically produces a kChain ReachCore that the
// dynamic service adopts as its frozen snapshot, with the harness
// differentially checking every epoch boundary and adoption.
TEST(ScaleBackendTest, DynamicRebuildPipelineOnChainBackend) {
  GeneratorParams base_params;
  base_params.num_nodes = 120;
  base_params.avg_out_degree = 3;
  base_params.locality = 30;
  base_params.seed = 61;
  const ArcList base = GenerateCyclicDigraph(base_params, 12);

  DynamicTraceOptions options;
  options.service.index.backend = ReachBackend::kChain;
  options.rebuild_every = 32;
  DynamicTraceHarness harness(base, base_params.num_nodes, options);

  Rng rng(97);
  for (int op = 0; op < 256; ++op) {
    const Status status =
        harness.RandomOp(&rng, /*insert_share=*/0.4, /*delete_share=*/0.2);
    ASSERT_TRUE(status.ok()) << "op " << op << ": " << status.ToString();
  }
  const Status final_round = harness.RebuildAndAdopt();
  ASSERT_TRUE(final_round.ok()) << final_round.ToString();
  EXPECT_GT(harness.mutations(), 0);
  EXPECT_GT(harness.epochs_verified(), 0);
  EXPECT_GT(harness.adoptions_verified(), 0);
  // The adopted snapshot really is a chain core.
  EXPECT_EQ(harness.service()->snapshot().backend, ReachBackend::kChain);
}

}  // namespace
}  // namespace tcdb
