// Generalized transitive closure tests: min/max hop lengths and path
// counts checked against in-memory dynamic-programming references, plus
// the structural consequences (no marking; reachable sets identical to the
// plain closure).

#include <gtest/gtest.h>

#include <queue>

#include "core/database.h"
#include "graph/algorithms.h"
#include "graph/generator.h"

namespace tcdb {
namespace {

// Reference shortest hop counts from `source` (BFS).
std::vector<int64_t> BfsDistances(const Digraph& graph, NodeId source) {
  std::vector<int64_t> dist(graph.NumNodes(), -1);
  std::queue<NodeId> queue;
  queue.push(source);
  dist[source] = 0;
  while (!queue.empty()) {
    const NodeId v = queue.front();
    queue.pop();
    for (const NodeId w : graph.Successors(v)) {
      if (dist[w] == -1) {
        dist[w] = dist[v] + 1;
        queue.push(w);
      }
    }
  }
  dist[source] = -1;  // A node is not its own successor on a DAG.
  return dist;
}

// Reference longest path lengths / path counts from `source` by DP in
// reverse topological order.
std::vector<int64_t> DagDp(const Digraph& graph, NodeId source, bool count) {
  const auto order = TopologicalSort(graph).value();
  // Forward DP from `source` in topological order.
  std::vector<int64_t> value(graph.NumNodes(), count ? 0 : -1);
  if (count) value[source] = 1;
  else value[source] = 0;
  for (const NodeId v : order) {
    if ((count && value[v] == 0) || (!count && value[v] == -1)) continue;
    for (const NodeId w : graph.Successors(v)) {
      if (count) {
        value[w] += value[v];
      } else {
        value[w] = std::max(value[w], value[v] + 1);
      }
    }
  }
  if (count) value[source] = 0;  // exclude the empty path to itself
  else value[source] = -1;
  for (NodeId v = 0; v < graph.NumNodes(); ++v) {
    if (count && value[v] == 0) value[v] = -1;  // unreachable marker
  }
  return value;
}

class GeneralizedClosureTest : public testing::TestWithParam<uint64_t> {};

TEST_P(GeneralizedClosureTest, MatchesReferences) {
  const GeneratorParams params{180, 4, 40, GetParam()};
  const ArcList arcs = GenerateDag(params);
  const Digraph graph(params.num_nodes, arcs);
  auto db = TcDatabase::Create(arcs, params.num_nodes);
  ASSERT_TRUE(db.ok());

  const std::vector<NodeId> sources =
      SampleSourceNodes(params.num_nodes, 5, GetParam() + 3);
  ExecOptions options;
  options.buffer_pages = 10;
  options.capture_answer = true;

  for (const PathAggregate aggregate :
       {PathAggregate::kMinLength, PathAggregate::kMaxLength,
        PathAggregate::kPathCount}) {
    auto run = db.value()->ExecuteAggregate(
        aggregate, QuerySpec::Partial(sources), options);
    ASSERT_TRUE(run.ok()) << PathAggregateName(aggregate);
    ASSERT_EQ(run.value().answer.size(), sources.size());
    for (const auto& [source, pairs] : run.value().answer) {
      std::vector<int64_t> expected;
      switch (aggregate) {
        case PathAggregate::kMinLength:
          expected = BfsDistances(graph, source);
          break;
        case PathAggregate::kMaxLength:
          expected = DagDp(graph, source, /*count=*/false);
          break;
        case PathAggregate::kPathCount:
          expected = DagDp(graph, source, /*count=*/true);
          break;
      }
      // Same reachable set as the plain closure, with the right values.
      int64_t reachable = 0;
      for (NodeId v = 0; v < params.num_nodes; ++v) {
        reachable += expected[v] >= 0 ? 1 : 0;
      }
      ASSERT_EQ(static_cast<int64_t>(pairs.size()), reachable)
          << PathAggregateName(aggregate) << " source " << source;
      for (const auto& [node, value] : pairs) {
        EXPECT_EQ(value, expected[node])
            << PathAggregateName(aggregate) << " " << source << "->" << node;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeneralizedClosureTest,
                         testing::Range<uint64_t>(1, 6));

TEST(GeneralizedClosureTest, HandComputedDiamond) {
  // 0 -> 1 -> 3, 0 -> 2 -> 3, 0 -> 3: three paths 0 ~> 3 of lengths
  // 1, 2, 2.
  const ArcList arcs = {{0, 1}, {0, 2}, {0, 3}, {1, 3}, {2, 3}};
  auto db = TcDatabase::Create(arcs, 4);
  ASSERT_TRUE(db.ok());
  ExecOptions options;
  options.capture_answer = true;
  auto min = db.value()->ExecuteAggregate(PathAggregate::kMinLength,
                                          QuerySpec::Partial({0}), options);
  auto max = db.value()->ExecuteAggregate(PathAggregate::kMaxLength,
                                          QuerySpec::Partial({0}), options);
  auto count = db.value()->ExecuteAggregate(PathAggregate::kPathCount,
                                            QuerySpec::Partial({0}), options);
  ASSERT_TRUE(min.ok());
  ASSERT_TRUE(max.ok());
  ASSERT_TRUE(count.ok());
  using Pairs = std::vector<std::pair<NodeId, int64_t>>;
  EXPECT_EQ(min.value().answer[0].second, (Pairs{{1, 1}, {2, 1}, {3, 1}}));
  EXPECT_EQ(max.value().answer[0].second, (Pairs{{1, 1}, {2, 1}, {3, 2}}));
  EXPECT_EQ(count.value().answer[0].second, (Pairs{{1, 1}, {2, 1}, {3, 3}}));
}

TEST(GeneralizedClosureTest, NoMarkingEveryArcProcessed) {
  // The marking optimization does not apply to path aggregates: every
  // magic arc is a union.
  const ArcList arcs = GenerateDag({300, 8, 100, 9});
  auto db = TcDatabase::Create(arcs, 300);
  ASSERT_TRUE(db.ok());
  auto run = db.value()->ExecuteAggregate(PathAggregate::kMinLength,
                                          QuerySpec::Full(), {});
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(run.value().metrics.arcs_processed,
            static_cast<int64_t>(arcs.size()));
  EXPECT_EQ(run.value().metrics.arcs_marked, 0);
  EXPECT_EQ(run.value().metrics.list_unions,
            static_cast<int64_t>(arcs.size()));
  // ... which makes it strictly more expensive than the plain closure.
  auto plain = db.value()->Execute(Algorithm::kBtc, QuerySpec::Full(), {});
  ASSERT_TRUE(plain.ok());
  EXPECT_GT(run.value().metrics.TotalIo(), plain.value().metrics.TotalIo());
}

TEST(GeneralizedClosureTest, PathCountSaturates) {
  // A ladder of diamonds doubles the path count per stage: 2^40 paths
  // overflow int32 storage and must clamp, not wrap.
  ArcList arcs;
  const int kStages = 40;
  // Nodes: stage i junction = 3i; two middles 3i+1, 3i+2; next junction
  // 3(i+1).
  for (int i = 0; i < kStages; ++i) {
    const NodeId a = 3 * i;
    arcs.push_back(Arc{a, a + 1});
    arcs.push_back(Arc{a, a + 2});
    arcs.push_back(Arc{a + 1, a + 3});
    arcs.push_back(Arc{a + 2, a + 3});
  }
  std::sort(arcs.begin(), arcs.end());
  const NodeId n = 3 * kStages + 1;
  auto db = TcDatabase::Create(arcs, n);
  ASSERT_TRUE(db.ok());
  ExecOptions options;
  options.capture_answer = true;
  auto run = db.value()->ExecuteAggregate(PathAggregate::kPathCount,
                                          QuerySpec::Partial({0}), options);
  ASSERT_TRUE(run.ok());
  const auto& pairs = run.value().answer[0].second;
  // The last junction has 2^40 paths; storage clamps at INT32_MAX.
  const auto it = std::find_if(pairs.begin(), pairs.end(), [&](const auto& p) {
    return p.first == n - 1;
  });
  ASSERT_NE(it, pairs.end());
  EXPECT_EQ(it->second, std::numeric_limits<int32_t>::max());
}

TEST(GeneralizedClosureTest, RejectsBadInput) {
  auto db = TcDatabase::Create({Arc{0, 1}}, 2);
  ASSERT_TRUE(db.ok());
  EXPECT_FALSE(db.value()
                   ->ExecuteAggregate(PathAggregate::kMinLength,
                                      QuerySpec::Partial({5}), {})
                   .ok());
}

}  // namespace
}  // namespace tcdb
