// Concurrency tests of the observation battery behind the sharded
// serving layer: a battery core served by a multi-shard ReachServer under
// concurrent clients answers bit-identically to the battery-off baseline,
// the merged statistics attribute every query to exactly one rule, and a
// battery core arrives intact through the SwapCore hot-swap path. This is
// a TSan target (tools/check.sh): the battery is shared read-only by
// every shard, so any missing synchronization shows up here.

#include <gtest/gtest.h>

#include <memory>
#include <utility>
#include <vector>

#include "graph/digraph.h"
#include "graph/generator.h"
#include "reach/load_driver.h"
#include "reach/reach_server.h"
#include "reach/reach_service.h"
#include "scale_oracle.h"
#include "workload/traffic_model.h"

namespace tcdb {
namespace {

struct Fixture {
  ArcList arcs;
  NodeId num_nodes = 0;
  Digraph graph;
  std::shared_ptr<const ReachCore> baseline;
  std::shared_ptr<const ReachCore> battery;
  std::vector<std::pair<NodeId, NodeId>> adversarial;
};

// One graph, both cores, and an adversarial mix mined against the
// baseline ladder — the traffic most likely to expose a battery bug.
Fixture MakeFixture(uint64_t seed) {
  Fixture f;
  GeneratorParams params;
  params.num_nodes = 600;
  params.avg_out_degree = 5;
  params.locality = 120;
  params.seed = seed;
  f.arcs = GenerateDag(params);
  f.num_nodes = params.num_nodes;
  f.graph = Digraph(f.num_nodes, f.arcs);

  auto baseline = ReachCore::Build(f.arcs, f.num_nodes);
  TCDB_CHECK(baseline.ok()) << baseline.status().ToString();
  f.baseline = baseline.value();

  TrafficModelOptions traffic;
  traffic.kind = WorkloadKind::kAdversarial;
  traffic.seed = seed + 1;
  f.adversarial = MakeModelWorkload(f.graph, traffic, 6000,
                                    MakeLadderProbe(f.baseline));

  ReachIndexOptions battery_options;
  battery_options.oreach = true;
  TrafficModelOptions train = traffic;
  train.seed = seed + 2;
  battery_options.oreach_traffic =
      MakeModelWorkload(f.graph, train, 2048, MakeLadderProbe(f.baseline));
  auto battery = ReachCore::Build(f.arcs, f.num_nodes, battery_options);
  TCDB_CHECK(battery.ok()) << battery.status().ToString();
  TCDB_CHECK(battery.value()->has_battery);
  f.battery = battery.value();
  return f;
}

std::unique_ptr<ReachServer> StartOrDie(std::shared_ptr<const ReachCore> core,
                                        int32_t shards) {
  ReachServerOptions options;
  options.num_shards = shards;
  options.queue_capacity = 32;
  auto server = ReachServer::Start(std::move(core), options);
  TCDB_CHECK(server.ok()) << server.status().ToString();
  return std::move(server).value();
}

TEST(OreachServerTest, ShardedBatteryAnswersMatchBaseline) {
  const Fixture f = MakeFixture(17);
  const std::unique_ptr<ReachServer> off = StartOrDie(f.baseline, 4);
  const std::unique_ptr<ReachServer> on = StartOrDie(f.battery, 4);

  // One big batch: splits across all four shards and runs concurrently.
  auto off_answers = off->QueryBatch(f.adversarial);
  auto on_answers = on->QueryBatch(f.adversarial);
  ASSERT_TRUE(off_answers.ok()) << off_answers.status().ToString();
  ASSERT_TRUE(on_answers.ok()) << on_answers.status().ToString();
  ASSERT_EQ(off_answers.value().size(), on_answers.value().size());
  for (size_t i = 0; i < f.adversarial.size(); ++i) {
    ASSERT_EQ(off_answers.value()[i].reachable,
              on_answers.value()[i].reachable)
        << f.adversarial[i].first << " -> " << f.adversarial[i].second;
  }

  // The battery must be doing real work on this mix, not just riding on
  // identical answers.
  const ReachServerStats stats = on->Snapshot();
  EXPECT_GT(stats.merged.Decided(ReachStage::kObservation), 0);
  EXPECT_GT(stats.merged.DecidedWithoutFallback(),
            off->Snapshot().merged.DecidedWithoutFallback());
}

TEST(OreachServerTest, ConcurrentClientsAndRuleAttribution) {
  const Fixture f = MakeFixture(23);
  const std::unique_ptr<ReachServer> server = StartOrDie(f.battery, 4);

  auto report = RunServingLoad(server.get(), f.adversarial, /*num_clients=*/4,
                               /*batch_size=*/128);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report.value().queries,
            static_cast<int64_t>(f.adversarial.size()));

  // Merged across shards, every query is attributed to exactly one rule,
  // and the per-shard counters sum to the merged totals.
  const ReachServerStats stats = server->Snapshot();
  EXPECT_EQ(stats.merged.queries,
            static_cast<int64_t>(f.adversarial.size()));
  int64_t rule_total = 0;
  for (int r = 0; r < kNumReachRules; ++r) {
    rule_total += stats.merged.rule_decided[r];
  }
  EXPECT_EQ(rule_total, stats.merged.queries);
  int64_t shard_queries = 0;
  for (const ReachStats& shard : stats.per_shard) {
    shard_queries += shard.queries;
  }
  EXPECT_EQ(shard_queries, stats.merged.queries);
}

TEST(OreachServerTest, SwapCorePublishesBatteryToAllShards) {
  const Fixture f = MakeFixture(31);
  const std::unique_ptr<ReachServer> server = StartOrDie(f.baseline, 4);

  // Warm traffic against the baseline core.
  auto warm = RunServingLoad(server.get(), f.adversarial, 4, 128);
  ASSERT_TRUE(warm.ok()) << warm.status().ToString();
  EXPECT_EQ(server->Snapshot().merged.Decided(ReachStage::kObservation), 0);

  // Publish the battery core, then drive traffic until every shard has
  // adopted it (adoption happens at task boundaries).
  ASSERT_TRUE(server->SwapCore(f.battery, /*epoch=*/1).ok());
  auto volley = RunServingLoad(server.get(), f.adversarial, 4, 128);
  ASSERT_TRUE(volley.ok()) << volley.status().ToString();

  const ReachServerStats stats = server->Snapshot();
  EXPECT_EQ(stats.core_swaps, 1);
  EXPECT_EQ(stats.published_epoch, 1);
  EXPECT_GT(stats.merged.Decided(ReachStage::kObservation), 0);

  // Sampled differential after the swap: answers still match the exact
  // BFS cones of the original graph.
  EXPECT_TRUE(VerifySampledReachability(
      f.graph, /*num_sources=*/24, /*seed=*/5, [&](NodeId u, NodeId v) {
        auto answer = server->Query(u, v);
        TCDB_CHECK(answer.ok()) << answer.status().ToString();
        return answer.value().reachable;
      }));
}

}  // namespace
}  // namespace tcdb
