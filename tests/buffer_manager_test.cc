// Buffer manager tests: pinning discipline, eviction, hit accounting,
// flush/discard semantics, and all five replacement policies.

#include <gtest/gtest.h>

#include "storage/buffer_manager.h"

namespace tcdb {
namespace {

class BufferManagerTest : public testing::Test {
 protected:
  BufferManagerTest() : file_(pager_.CreateFile("data")) {
    for (int i = 0; i < 32; ++i) pager_.AllocatePage(file_);
  }

  Pager pager_;
  FileId file_;
};

TEST_F(BufferManagerTest, FetchPinsAndCaches) {
  BufferManager buffers(&pager_, 4, PagePolicy::kLru);
  auto page = buffers.FetchPage({file_, 0});
  ASSERT_TRUE(page.ok());
  EXPECT_TRUE(buffers.IsCached({file_, 0}));
  EXPECT_TRUE(buffers.IsPinned({file_, 0}));
  buffers.Unpin({file_, 0}, false);
  EXPECT_FALSE(buffers.IsPinned({file_, 0}));
  EXPECT_TRUE(buffers.IsCached({file_, 0}));
}

TEST_F(BufferManagerTest, SecondFetchIsHit) {
  BufferManager buffers(&pager_, 4, PagePolicy::kLru);
  ASSERT_TRUE(buffers.FetchPage({file_, 0}).ok());
  buffers.Unpin({file_, 0}, false);
  ASSERT_TRUE(buffers.FetchPage({file_, 0}).ok());
  buffers.Unpin({file_, 0}, false);
  const auto total = buffers.access_stats().Total();
  EXPECT_EQ(total.hits, 1u);
  EXPECT_EQ(total.misses, 1u);
  EXPECT_EQ(pager_.stats().Total().reads, 1u);
}

TEST_F(BufferManagerTest, EvictionWritesDirtyPages) {
  BufferManager buffers(&pager_, 2, PagePolicy::kLru);
  auto page = buffers.FetchPage({file_, 0});
  ASSERT_TRUE(page.ok());
  *page.value()->As<int32_t>(0) = 42;
  buffers.Unpin({file_, 0}, /*dirty=*/true);
  // Fill the pool so page 0 is evicted.
  for (PageNumber p = 1; p <= 2; ++p) {
    ASSERT_TRUE(buffers.FetchPage({file_, p}).ok());
    buffers.Unpin({file_, p}, false);
  }
  EXPECT_FALSE(buffers.IsCached({file_, 0}));
  EXPECT_EQ(pager_.stats().Total().writes, 1u);
  // Re-reading returns the written data.
  auto again = buffers.FetchPage({file_, 0});
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(*again.value()->As<int32_t>(0), 42);
  buffers.Unpin({file_, 0}, false);
}

TEST_F(BufferManagerTest, CleanEvictionDoesNotWrite) {
  BufferManager buffers(&pager_, 2, PagePolicy::kLru);
  for (PageNumber p = 0; p < 6; ++p) {
    ASSERT_TRUE(buffers.FetchPage({file_, p}).ok());
    buffers.Unpin({file_, p}, false);
  }
  EXPECT_EQ(pager_.stats().Total().writes, 0u);
  EXPECT_EQ(pager_.stats().Total().reads, 6u);
}

TEST_F(BufferManagerTest, PinnedPagesAreNotEvicted) {
  BufferManager buffers(&pager_, 2, PagePolicy::kLru);
  ASSERT_TRUE(buffers.FetchPage({file_, 0}).ok());  // stays pinned
  for (PageNumber p = 1; p < 5; ++p) {
    ASSERT_TRUE(buffers.FetchPage({file_, p}).ok());
    buffers.Unpin({file_, p}, false);
  }
  EXPECT_TRUE(buffers.IsCached({file_, 0}));
  buffers.Unpin({file_, 0}, false);
}

TEST_F(BufferManagerTest, ExhaustionWhenAllPinned) {
  BufferManager buffers(&pager_, 2, PagePolicy::kLru);
  ASSERT_TRUE(buffers.FetchPage({file_, 0}).ok());
  ASSERT_TRUE(buffers.FetchPage({file_, 1}).ok());
  auto third = buffers.FetchPage({file_, 2});
  EXPECT_FALSE(third.ok());
  EXPECT_EQ(third.status().code(), StatusCode::kResourceExhausted);
  buffers.Unpin({file_, 0}, false);
  // Now there is a victim.
  EXPECT_TRUE(buffers.FetchPage({file_, 2}).ok());
  buffers.Unpin({file_, 1}, false);
  buffers.Unpin({file_, 2}, false);
}

TEST_F(BufferManagerTest, NestedPins) {
  BufferManager buffers(&pager_, 2, PagePolicy::kLru);
  ASSERT_TRUE(buffers.FetchPage({file_, 0}).ok());
  ASSERT_TRUE(buffers.FetchPage({file_, 0}).ok());
  buffers.Unpin({file_, 0}, false);
  EXPECT_TRUE(buffers.IsPinned({file_, 0}));
  buffers.Unpin({file_, 0}, false);
  EXPECT_FALSE(buffers.IsPinned({file_, 0}));
}

TEST_F(BufferManagerTest, NewPageIsDirtyAndZeroed) {
  BufferManager buffers(&pager_, 2, PagePolicy::kLru);
  auto page = buffers.NewPage(file_);
  ASSERT_TRUE(page.ok());
  EXPECT_EQ(page.value().first, 32u);  // appended after the 32 existing
  EXPECT_EQ(*page.value().second->As<int64_t>(0), 0);
  buffers.Unpin({file_, page.value().first}, false);
  // Eviction must write it (it was born dirty).
  for (PageNumber p = 0; p < 3; ++p) {
    ASSERT_TRUE(buffers.FetchPage({file_, p}).ok());
    buffers.Unpin({file_, p}, false);
  }
  EXPECT_EQ(pager_.stats().ForFile(file_).writes, 1u);
}

TEST_F(BufferManagerTest, FlushAllAndFile) {
  const FileId other = pager_.CreateFile("other");
  pager_.AllocatePage(other);
  BufferManager buffers(&pager_, 4, PagePolicy::kLru);
  ASSERT_TRUE(buffers.FetchPage({file_, 0}).ok());
  buffers.Unpin({file_, 0}, true);
  ASSERT_TRUE(buffers.FetchPage({other, 0}).ok());
  buffers.Unpin({other, 0}, true);

  buffers.FlushFile(other);
  EXPECT_EQ(pager_.stats().ForFile(other).writes, 1u);
  EXPECT_EQ(pager_.stats().ForFile(file_).writes, 0u);
  buffers.FlushAll();
  EXPECT_EQ(pager_.stats().ForFile(file_).writes, 1u);
  // Flushing clean pages again writes nothing.
  buffers.FlushAll();
  EXPECT_EQ(pager_.stats().Total().writes, 2u);
}

TEST_F(BufferManagerTest, DiscardDropsWithoutWrite) {
  BufferManager buffers(&pager_, 4, PagePolicy::kLru);
  ASSERT_TRUE(buffers.FetchPage({file_, 0}).ok());
  buffers.Unpin({file_, 0}, true);
  buffers.DiscardPage({file_, 0});
  EXPECT_FALSE(buffers.IsCached({file_, 0}));
  EXPECT_EQ(pager_.stats().Total().writes, 0u);
}

TEST_F(BufferManagerTest, DiscardFileOnlyTouchesFile) {
  const FileId other = pager_.CreateFile("other");
  pager_.AllocatePage(other);
  BufferManager buffers(&pager_, 4, PagePolicy::kLru);
  ASSERT_TRUE(buffers.FetchPage({file_, 0}).ok());
  buffers.Unpin({file_, 0}, true);
  ASSERT_TRUE(buffers.FetchPage({other, 0}).ok());
  buffers.Unpin({other, 0}, true);
  buffers.DiscardFile(file_);
  EXPECT_FALSE(buffers.IsCached({file_, 0}));
  EXPECT_TRUE(buffers.IsCached({other, 0}));
}

TEST_F(BufferManagerTest, HitStatsAttributedToPhase) {
  BufferManager buffers(&pager_, 4, PagePolicy::kLru);
  pager_.SetPhase(Phase::kComputation);
  ASSERT_TRUE(buffers.FetchPage({file_, 0}).ok());
  buffers.Unpin({file_, 0}, false);
  ASSERT_TRUE(buffers.FetchPage({file_, 0}).ok());
  buffers.Unpin({file_, 0}, false);
  const auto hm =
      buffers.access_stats().ForFileAndPhase(file_, Phase::kComputation);
  EXPECT_EQ(hm.hits, 1u);
  EXPECT_EQ(hm.misses, 1u);
  EXPECT_DOUBLE_EQ(hm.HitRatio(), 0.5);
  EXPECT_EQ(buffers.access_stats().ForPhase(Phase::kSetup).requests(), 0u);
}

TEST_F(BufferManagerTest, NewPageExhaustsWhenAllPinned) {
  // HYB's dynamic reblocking depends on this exact signal: allocation must
  // fail with kResourceExhausted (not evict a pinned frame) when every
  // frame is pinned, and succeed again once a pin is dropped.
  BufferManager buffers(&pager_, 2, PagePolicy::kLru);
  ASSERT_TRUE(buffers.FetchPage({file_, 0}).ok());
  ASSERT_TRUE(buffers.FetchPage({file_, 1}).ok());
  auto page = buffers.NewPage(file_);
  ASSERT_FALSE(page.ok());
  EXPECT_EQ(page.status().code(), StatusCode::kResourceExhausted);
  // The failed allocation must not have leaked a frame or a pin.
  EXPECT_EQ(buffers.PinnedCount(), 2u);
  EXPECT_TRUE(buffers.AuditCachedCountConsistent().ok());
  buffers.Unpin({file_, 1}, false);
  auto retry = buffers.NewPage(file_);
  ASSERT_TRUE(retry.ok());
  buffers.Unpin({file_, retry.value().first}, false);
  buffers.Unpin({file_, 0}, false);
  EXPECT_TRUE(buffers.AuditNoPins().ok());
}

TEST_F(BufferManagerTest, DiscardedFramesAreReusedWithoutEviction) {
  BufferManager buffers(&pager_, 2, PagePolicy::kLru);
  for (PageNumber p = 0; p < 2; ++p) {
    ASSERT_TRUE(buffers.FetchPage({file_, p}).ok());
    buffers.Unpin({file_, p}, false);
  }
  // Discard one page: its frame goes back on the free list, so the next
  // fetch must fill it directly — no eviction, no write-back.
  buffers.DiscardPage({file_, 0});
  EXPECT_EQ(buffers.CachedCount(), 1u);
  ASSERT_TRUE(buffers.FetchPage({file_, 5}).ok());
  buffers.Unpin({file_, 5}, false);
  EXPECT_TRUE(buffers.IsCached({file_, 1}));  // nothing was evicted
  EXPECT_EQ(pager_.stats().Total().writes, 0u);

  // DiscardFile frees every frame of the file at once.
  buffers.DiscardFile(file_);
  EXPECT_EQ(buffers.CachedCount(), 0u);
  EXPECT_TRUE(buffers.AuditCachedCountConsistent().ok());
  for (PageNumber p = 8; p < 10; ++p) {
    ASSERT_TRUE(buffers.FetchPage({file_, p}).ok());
    buffers.Unpin({file_, p}, false);
  }
  EXPECT_EQ(pager_.stats().Total().writes, 0u);
  EXPECT_TRUE(buffers.AuditNoPins().ok());
}

TEST_F(BufferManagerTest, ClockFallsBackOnSecondSweep) {
  // Every unpinned frame has its reference bit set, so the first sweep
  // only clears bits; the second sweep must still find a victim instead
  // of reporting exhaustion.
  BufferManager buffers(&pager_, 3, PagePolicy::kClock);
  for (PageNumber p = 0; p < 3; ++p) {
    ASSERT_TRUE(buffers.FetchPage({file_, p}).ok());
    buffers.Unpin({file_, p}, false);
  }
  // Re-reference all three so no bit is clear at eviction time.
  for (PageNumber p = 0; p < 3; ++p) {
    ASSERT_TRUE(buffers.FetchPage({file_, p}).ok());
    buffers.Unpin({file_, p}, false);
  }
  auto page = buffers.FetchPage({file_, 10});
  ASSERT_TRUE(page.ok());
  buffers.Unpin({file_, 10}, false);
  EXPECT_EQ(buffers.CachedCount(), 3u);
  // With one frame pinned and the rest referenced, the sweeps skip the
  // pinned frame but still evict one of the others.
  ASSERT_TRUE(buffers.FetchPage({file_, 10}).ok());
  for (PageNumber p = 20; p < 22; ++p) {
    ASSERT_TRUE(buffers.FetchPage({file_, p}).ok());
    buffers.Unpin({file_, p}, false);
  }
  EXPECT_TRUE(buffers.IsCached({file_, 10}));
  buffers.Unpin({file_, 10}, false);
  EXPECT_TRUE(buffers.AuditNoPins().ok());
}

TEST_F(BufferManagerTest, AuditReportsDanglingPinWithProvenance) {
  BufferManager buffers(&pager_, 4, PagePolicy::kLru);
  EXPECT_TRUE(buffers.AuditNoPins().ok());
  ASSERT_TRUE(buffers.FetchPage({file_, 3}, "LeakyCaller").ok());
  const Status leak = buffers.AuditNoPins();
  ASSERT_FALSE(leak.ok());
  EXPECT_EQ(leak.code(), StatusCode::kInternal);
  // The report names the file, the page and the pinning call site.
  EXPECT_NE(leak.message().find("data"), std::string::npos);
  EXPECT_NE(leak.message().find("page 3"), std::string::npos);
  EXPECT_NE(leak.message().find("LeakyCaller"), std::string::npos);
  buffers.Unpin({file_, 3}, false);
  EXPECT_TRUE(buffers.AuditNoPins().ok());
  EXPECT_TRUE(buffers.AuditCachedCountConsistent().ok());
}

// --- Policy behaviour -------------------------------------------------

// Touch pages 0..n-1, then re-touch page 0, then overflow by one and check
// which page was evicted.
PageNumber EvictedAfterSequence(Pager* pager, FileId file,
                                PagePolicy policy) {
  BufferManager buffers(pager, 3, policy);
  for (PageNumber p = 0; p < 3; ++p) {
    EXPECT_TRUE(buffers.FetchPage({file, p}).ok());
    buffers.Unpin({file, p}, false);
  }
  // Re-access page 0 (matters for LRU/MRU, not FIFO).
  EXPECT_TRUE(buffers.FetchPage({file, 0}).ok());
  buffers.Unpin({file, 0}, false);
  // Overflow.
  EXPECT_TRUE(buffers.FetchPage({file, 10}).ok());
  buffers.Unpin({file, 10}, false);
  for (PageNumber p = 0; p < 3; ++p) {
    if (!buffers.IsCached({file, p})) return p;
  }
  return kInvalidPageNumber;
}

TEST_F(BufferManagerTest, LruEvictsLeastRecentlyUsed) {
  EXPECT_EQ(EvictedAfterSequence(&pager_, file_, PagePolicy::kLru), 1u);
}

TEST_F(BufferManagerTest, MruEvictsMostRecentlyUsed) {
  EXPECT_EQ(EvictedAfterSequence(&pager_, file_, PagePolicy::kMru), 0u);
}

TEST_F(BufferManagerTest, FifoIgnoresReaccess) {
  EXPECT_EQ(EvictedAfterSequence(&pager_, file_, PagePolicy::kFifo), 0u);
}

TEST_F(BufferManagerTest, ClockEvictsUnreferenced) {
  // All pages start referenced; the first sweep clears bits, the second
  // picks the first candidate — deterministic, just verify it works and
  // evicts exactly one page.
  BufferManager buffers(&pager_, 3, PagePolicy::kClock);
  for (PageNumber p = 0; p < 4; ++p) {
    ASSERT_TRUE(buffers.FetchPage({file_, p}).ok());
    buffers.Unpin({file_, p}, false);
  }
  int cached = 0;
  for (PageNumber p = 0; p < 4; ++p) cached += buffers.IsCached({file_, p});
  EXPECT_EQ(cached, 3);
}

TEST_F(BufferManagerTest, RandomPolicyIsDeterministicInSeed) {
  auto run = [&](uint64_t seed) {
    Pager pager;
    const FileId file = pager.CreateFile("x");
    for (int i = 0; i < 16; ++i) pager.AllocatePage(file);
    BufferManager buffers(&pager, 3, PagePolicy::kRandom, seed);
    std::vector<bool> cached;
    for (PageNumber p = 0; p < 10; ++p) {
      EXPECT_TRUE(buffers.FetchPage({file, p}).ok());
      buffers.Unpin({file, p}, false);
    }
    for (PageNumber p = 0; p < 10; ++p) {
      cached.push_back(buffers.IsCached({file, p}));
    }
    return cached;
  };
  EXPECT_EQ(run(1), run(1));
}

TEST_F(BufferManagerTest, AllPoliciesSurviveWorkout) {
  for (PagePolicy policy :
       {PagePolicy::kLru, PagePolicy::kMru, PagePolicy::kFifo,
        PagePolicy::kClock, PagePolicy::kRandom}) {
    BufferManager buffers(&pager_, 5, policy);
    // Mixed fetch/new/dirty pattern.
    for (int round = 0; round < 200; ++round) {
      const PageNumber p = static_cast<PageNumber>((round * 7) % 32);
      auto page = buffers.FetchPage({file_, p});
      ASSERT_TRUE(page.ok()) << PagePolicyName(policy);
      buffers.Unpin({file_, p}, round % 3 == 0);
    }
    buffers.FlushAll();
    // Data must be identical to a direct read.
    Page direct;
    pager_.ReadPage(file_, 3, &direct);
    auto via_pool = buffers.FetchPage({file_, 3});
    ASSERT_TRUE(via_pool.ok());
    EXPECT_EQ(std::memcmp(direct.data, via_pool.value()->data, kPageSize), 0);
    buffers.Unpin({file_, 3}, false);
  }
}

}  // namespace
}  // namespace tcdb
