// Replication protocol plumbing (ctest labels: `replica` and `fast`):
// frame encode/decode over the transport seam, segment-image scanning
// (the shipping primitive), segment listing, WAL group commit, and the
// ByteStream contract for both the in-process pipe and a real
// socketpair.

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "dynamic/mutation_log.h"
#include "persist/fs.h"
#include "persist/wal.h"
#include "replica/transport.h"
#include "replica/wire.h"

namespace tcdb {
namespace {

// Deterministic single-threaded ByteStream over a byte string, for
// corrupting frames in transit: Write appends to `bytes`, Read consumes
// from the front with the contract's OutOfRange/Corruption split.
class StringStream : public ByteStream {
 public:
  explicit StringStream(std::string bytes = {}) : bytes_(std::move(bytes)) {}

  Status Write(const char* data, size_t n) override {
    bytes_.append(data, n);
    return Status::Ok();
  }

  Status Read(char* out, size_t n) override {
    if (pos_ == bytes_.size() && n > 0) {
      return Status::OutOfRange("end of stream");
    }
    if (pos_ + n > bytes_.size()) {
      return Status::Corruption("stream ended mid-request");
    }
    std::memcpy(out, bytes_.data() + pos_, n);
    pos_ += n;
    return Status::Ok();
  }

  void Close() override {}

  std::string& bytes() { return bytes_; }

 private:
  std::string bytes_;
  size_t pos_ = 0;
};

MutationLog::Entry MakeEntry(NodeId src, NodeId dst, bool insert) {
  return MutationLog::Entry{Arc{src, dst}, insert};
}

std::string ReadAll(Fs* fs, const std::string& path) {
  auto file = fs->Open(path, /*create=*/false);
  EXPECT_TRUE(file.ok()) << path;
  auto size = file.value()->Size();
  EXPECT_TRUE(size.ok());
  std::string bytes(static_cast<size_t>(size.value()), '\0');
  size_t bytes_read = 0;
  EXPECT_TRUE(file.value()
                  ->ReadAt(0, bytes.data(), bytes.size(), &bytes_read)
                  .ok());
  EXPECT_EQ(bytes_read, bytes.size());
  return bytes;
}

TEST(Wire, RoundTripsEveryFrameType) {
  for (const FrameType type :
       {FrameType::kHello, FrameType::kCheckpoint, FrameType::kSegment,
        FrameType::kSegmentOk, FrameType::kResendSegment,
        FrameType::kBootstrapDone, FrameType::kCaughtUp, FrameType::kRecord,
        FrameType::kHeartbeat}) {
    StringStream stream;
    Frame frame;
    frame.type = type;
    frame.a = 123456789012345;
    frame.b = -7;
    if (type == FrameType::kRecord) {
      frame.entry = MakeEntry(41, 99, false);
    }
    if (type == FrameType::kCheckpoint || type == FrameType::kSegment) {
      frame.bytes = std::string("payload\0with\0nuls", 17);
    }
    ASSERT_TRUE(WriteFrame(&stream, frame).ok());
    auto round = ReadFrame(&stream);
    ASSERT_TRUE(round.ok()) << round.status().ToString();
    EXPECT_EQ(round.value().type, frame.type);
    EXPECT_EQ(round.value().a, frame.a);
    EXPECT_EQ(round.value().b, frame.b);
    EXPECT_EQ(round.value().bytes, frame.bytes);
    if (type == FrameType::kRecord) {
      EXPECT_EQ(round.value().entry, frame.entry);
    }
  }
}

TEST(Wire, RecordFrameHasTheDocumentedSize) {
  StringStream stream;
  Frame frame;
  frame.type = FrameType::kRecord;
  frame.a = 1;
  frame.entry = MakeEntry(0, 1, true);
  ASSERT_TRUE(WriteFrame(&stream, frame).ok());
  EXPECT_EQ(static_cast<int64_t>(stream.bytes().size()), kRecordFrameBytes);
}

TEST(Wire, CleanEndOfStreamIsOutOfRange) {
  StringStream empty;
  const auto frame = ReadFrame(&empty);
  ASSERT_FALSE(frame.ok());
  EXPECT_EQ(frame.status().code(), StatusCode::kOutOfRange);
}

TEST(Wire, MidFrameEndOfStreamIsCorruption) {
  StringStream writer;
  Frame frame;
  frame.type = FrameType::kHeartbeat;
  frame.a = 9;
  ASSERT_TRUE(WriteFrame(&writer, frame).ok());
  StringStream truncated(writer.bytes().substr(0, writer.bytes().size() - 3));
  const auto read = ReadFrame(&truncated);
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kCorruption);
}

TEST(Wire, FlippedPayloadByteIsCorruption) {
  StringStream writer;
  Frame frame;
  frame.type = FrameType::kRecord;
  frame.a = 4;
  frame.entry = MakeEntry(3, 5, true);
  ASSERT_TRUE(WriteFrame(&writer, frame).ok());
  std::string bytes = writer.bytes();
  bytes[bytes.size() - 1] ^= 0x40;  // inside the entry payload
  StringStream corrupted(bytes);
  const auto read = ReadFrame(&corrupted);
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kCorruption);
}

// Builds a WAL under `dir` with records at epochs [1, n] and returns the
// image of its single segment.
std::string BuildSegment(MemFs* fs, const std::string& dir, int64_t n,
                         const WalOptions& options = {}) {
  EXPECT_TRUE(fs->MakeDir(dir).ok());
  auto wal = Wal::Open(fs, dir, options);
  EXPECT_TRUE(wal.ok());
  for (int64_t epoch = 1; epoch <= n; ++epoch) {
    EXPECT_TRUE(wal.value()
                    ->Append(epoch, MakeEntry(static_cast<NodeId>(epoch),
                                              static_cast<NodeId>(epoch + 1),
                                              epoch % 2 == 0))
                    .ok());
  }
  EXPECT_TRUE(wal.value()->Sync().ok());
  return ReadAll(fs, JoinPath(dir, Wal::SegmentName(1)));
}

TEST(SegmentScan, ParsesACleanSegment) {
  MemFs fs;
  const std::string bytes = BuildSegment(&fs, "wal", 5);
  auto scan = Wal::ScanSegment(bytes, 1);
  ASSERT_TRUE(scan.ok());
  EXPECT_TRUE(scan.value().torn_reason.empty());
  EXPECT_EQ(scan.value().valid_end, static_cast<int64_t>(bytes.size()));
  ASSERT_EQ(scan.value().records.size(), 5u);
  for (int64_t epoch = 1; epoch <= 5; ++epoch) {
    EXPECT_EQ(scan.value().records[static_cast<size_t>(epoch - 1)].epoch,
              epoch);
  }
  // expected_first_epoch < 0 skips the first-epoch check.
  EXPECT_TRUE(Wal::ScanSegment(bytes, -1).ok());
}

TEST(SegmentScan, ReportsATornTailWithoutFailing) {
  MemFs fs;
  const std::string bytes = BuildSegment(&fs, "wal", 5);
  const std::string torn = bytes.substr(0, bytes.size() - 7);
  auto scan = Wal::ScanSegment(torn, 1);
  ASSERT_TRUE(scan.ok());
  EXPECT_FALSE(scan.value().torn_reason.empty());
  EXPECT_EQ(scan.value().records.size(), 4u);
  EXPECT_LT(scan.value().valid_end, static_cast<int64_t>(torn.size()));
}

TEST(SegmentScan, FlippedRecordByteStopsTheScan) {
  MemFs fs;
  std::string bytes = BuildSegment(&fs, "wal", 5);
  bytes[bytes.size() - 3] ^= 0x01;  // inside the last record
  auto scan = Wal::ScanSegment(bytes, 1);
  ASSERT_TRUE(scan.ok());
  EXPECT_FALSE(scan.value().torn_reason.empty());
  EXPECT_EQ(scan.value().records.size(), 4u);
}

TEST(SegmentScan, WrongHeaderScansToNothing) {
  MemFs fs;
  const std::string bytes = BuildSegment(&fs, "wal", 3);
  // Wrong expected first epoch.
  auto wrong_epoch = Wal::ScanSegment(bytes, 2);
  ASSERT_TRUE(wrong_epoch.ok());
  EXPECT_FALSE(wrong_epoch.value().torn_reason.empty());
  EXPECT_EQ(wrong_epoch.value().valid_end, 0);
  EXPECT_TRUE(wrong_epoch.value().records.empty());
  // Garbage magic.
  std::string garbage = bytes;
  garbage[0] ^= 0xff;
  auto bad_magic = Wal::ScanSegment(garbage, 1);
  ASSERT_TRUE(bad_magic.ok());
  EXPECT_EQ(bad_magic.value().valid_end, 0);
  // Too short to even hold a header.
  auto stub = Wal::ScanSegment("XX", 1);
  ASSERT_TRUE(stub.ok());
  EXPECT_EQ(stub.value().valid_end, 0);
}

TEST(SegmentScan, ListSegmentsReturnsSortedFirstEpochs) {
  MemFs fs;
  ASSERT_TRUE(fs.MakeDir("wal").ok());
  WalOptions options;
  options.segment_bytes = 1;  // rotate after every record
  auto wal = Wal::Open(&fs, "wal", options);
  ASSERT_TRUE(wal.ok());
  for (int64_t epoch = 1; epoch <= 4; ++epoch) {
    ASSERT_TRUE(wal.value()->Append(epoch, MakeEntry(1, 2, true)).ok());
  }
  auto segments = Wal::ListSegments(&fs, "wal");
  ASSERT_TRUE(segments.ok());
  EXPECT_EQ(segments.value(), (std::vector<int64_t>{1, 2, 3, 4}));
  EXPECT_FALSE(Wal::ListSegments(&fs, "missing").ok());
}

TEST(GroupCommit, CoalescesSyncsAtTheBatchBoundary) {
  MemFs fs;
  ASSERT_TRUE(fs.MakeDir("wal").ok());
  WalOptions options;
  options.sync_each_append = true;
  options.group_commit_records = 4;
  auto wal = Wal::Open(&fs, "wal", options);
  ASSERT_TRUE(wal.ok());
  const int64_t baseline = wal.value()->syncs();
  for (int64_t epoch = 1; epoch <= 10; ++epoch) {
    ASSERT_TRUE(wal.value()->Append(epoch, MakeEntry(1, 2, true)).ok());
  }
  // Batches complete at records 4 and 8; records 9 and 10 are pending.
  EXPECT_EQ(wal.value()->syncs() - baseline, 2);
  ASSERT_TRUE(wal.value()->Sync().ok());
  EXPECT_EQ(wal.value()->syncs() - baseline, 3);
  // With nothing pending, Sync is free.
  ASSERT_TRUE(wal.value()->Sync().ok());
  EXPECT_EQ(wal.value()->syncs() - baseline, 3);
}

TEST(GroupCommit, BatchSizeOneSyncsEveryAppend) {
  MemFs fs;
  ASSERT_TRUE(fs.MakeDir("wal").ok());
  WalOptions options;
  options.sync_each_append = true;
  options.group_commit_records = 1;
  auto wal = Wal::Open(&fs, "wal", options);
  ASSERT_TRUE(wal.ok());
  const int64_t baseline = wal.value()->syncs();
  for (int64_t epoch = 1; epoch <= 5; ++epoch) {
    ASSERT_TRUE(wal.value()->Append(epoch, MakeEntry(1, 2, true)).ok());
  }
  EXPECT_EQ(wal.value()->syncs() - baseline, 5);
}

TEST(GroupCommit, RotationFlushesThePendingBatch) {
  MemFs fs;
  ASSERT_TRUE(fs.MakeDir("wal").ok());
  WalOptions options;
  options.sync_each_append = true;
  options.group_commit_records = 100;
  auto wal = Wal::Open(&fs, "wal", options);
  ASSERT_TRUE(wal.ok());
  const int64_t baseline = wal.value()->syncs();
  for (int64_t epoch = 1; epoch <= 3; ++epoch) {
    ASSERT_TRUE(wal.value()->Append(epoch, MakeEntry(1, 2, true)).ok());
  }
  EXPECT_EQ(wal.value()->syncs() - baseline, 0);
  // The outgoing segment syncs before the new one starts, so a batch
  // never spans files — and the rotated-out records are durable.
  ASSERT_TRUE(wal.value()->Rotate(4).ok());
  EXPECT_GE(wal.value()->syncs() - baseline, 1);
  auto segments = Wal::ListSegments(&fs, "wal");
  ASSERT_TRUE(segments.ok());
  EXPECT_EQ(segments.value(), (std::vector<int64_t>{1, 4}));
  auto scan = Wal::ScanSegment(ReadAll(&fs, JoinPath("wal",
                                                     Wal::SegmentName(1))),
                               1);
  ASSERT_TRUE(scan.ok());
  EXPECT_EQ(scan.value().records.size(), 3u);
  EXPECT_TRUE(scan.value().torn_reason.empty());
}

TEST(GroupCommit, RecoveryStillSeesUnsyncedAppends) {
  // MemFs keeps every successful write, so a clean close mid-batch must
  // reopen to the full record set (durability under a *crash* mid-batch
  // is bounded by the batch size — that is the documented trade).
  MemFs fs;
  ASSERT_TRUE(fs.MakeDir("wal").ok());
  WalOptions options;
  options.group_commit_records = 8;
  {
    auto wal = Wal::Open(&fs, "wal", options);
    ASSERT_TRUE(wal.ok());
    for (int64_t epoch = 1; epoch <= 5; ++epoch) {
      ASSERT_TRUE(wal.value()->Append(epoch, MakeEntry(1, 2, true)).ok());
    }
  }
  auto reopened = Wal::Open(&fs, "wal", options);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(reopened.value()->recovered_records().size(), 5u);
  EXPECT_EQ(reopened.value()->last_epoch(), 5);
}

TEST(Pipe, RoundTripsBytesAndBlocksOnCapacity) {
  auto [a, b] = MakeInProcessPipe(/*capacity_bytes=*/8);
  std::string sent(64, 'x');
  for (size_t i = 0; i < sent.size(); ++i) {
    sent[i] = static_cast<char>('a' + i % 26);
  }
  // The writer must park on the 8-byte buffer until the reader drains.
  std::thread writer([&] {
    ASSERT_TRUE(a->Write(sent.data(), sent.size()).ok());
  });
  std::string received(sent.size(), '\0');
  ASSERT_TRUE(b->Read(received.data(), received.size()).ok());
  writer.join();
  EXPECT_EQ(received, sent);
}

TEST(Pipe, CloseDrainsBufferedBytesThenEndsTheStream) {
  auto [a, b] = MakeInProcessPipe();
  ASSERT_TRUE(a->Write("abc", 3).ok());
  a->Close();
  char buf[3];
  ASSERT_TRUE(b->Read(buf, 3).ok());  // buffered bytes still drain
  const Status end = b->Read(buf, 1);
  EXPECT_EQ(end.code(), StatusCode::kOutOfRange);  // clean boundary
  const Status write_back = b->Write("x", 1);
  EXPECT_EQ(write_back.code(), StatusCode::kFailedPrecondition);
}

TEST(Pipe, CloseMidRequestIsCorruption) {
  auto [a, b] = MakeInProcessPipe();
  ASSERT_TRUE(a->Write("ab", 2).ok());
  a->Close();
  char buf[4];
  const Status read = b->Read(buf, 4);
  EXPECT_EQ(read.code(), StatusCode::kCorruption);
}

TEST(Pipe, CloseUnblocksAParkedReader) {
  auto [a, b] = MakeInProcessPipe();
  std::thread reader([&] {
    char buf[1];
    const Status read = b->Read(buf, 1);
    EXPECT_EQ(read.code(), StatusCode::kOutOfRange);
  });
  a->Close();
  reader.join();
}

TEST(SocketPair, CarriesFramesAcrossRealDescriptors) {
  auto pair = MakeSocketPair();
  ASSERT_TRUE(pair.ok());
  auto& [a, b] = pair.value();
  Frame frame;
  frame.type = FrameType::kSegment;
  frame.a = 10;
  frame.b = 17;
  frame.bytes = std::string(4096, '\x5a');
  std::thread writer([&] {
    ASSERT_TRUE(WriteFrame(a.get(), frame).ok());
    a->Close();
  });
  auto read = ReadFrame(b.get());
  writer.join();
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_EQ(read.value().a, 10);
  EXPECT_EQ(read.value().bytes, frame.bytes);
  const auto end = ReadFrame(b.get());
  ASSERT_FALSE(end.ok());
  EXPECT_EQ(end.status().code(), StatusCode::kOutOfRange);
}

}  // namespace
}  // namespace tcdb
