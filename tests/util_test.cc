// Unit tests for the utility layer: Status/Result, Rng, BitVector,
// EpochSet, StatAccumulator, TablePrinter, env helpers.

#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <set>

#include "util/bit_vector.h"
#include "util/env.h"
#include "util/random.h"
#include "util/stats.h"
#include "util/status.h"
#include "util/table_printer.h"

namespace tcdb {
namespace {

TEST(StatusTest, OkByDefault) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status status = Status::NotFound("missing key");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
  EXPECT_EQ(status.message(), "missing key");
  EXPECT_EQ(status.ToString(), "NotFound: missing key");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kOutOfRange, StatusCode::kResourceExhausted,
        StatusCode::kFailedPrecondition, StatusCode::kCorruption}) {
    EXPECT_STRNE(StatusCodeName(code), "Unknown");
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> result(42);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> result(Status::OutOfRange("x"));
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kOutOfRange);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> result(std::make_unique<int>(7));
  ASSERT_TRUE(result.ok());
  std::unique_ptr<int> value = std::move(result).value();
  EXPECT_EQ(*value, 7);
}

Status FailsThenPropagates() {
  TCDB_RETURN_IF_ERROR(Status::Corruption("inner"));
  return Status::Ok();
}

TEST(ResultTest, ReturnIfErrorPropagates) {
  EXPECT_EQ(FailsThenPropagates().code(), StatusCode::kCorruption);
}

TEST(RngTest, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int differing = 0;
  for (int i = 0; i < 20; ++i) differing += a.Next() != b.Next();
  EXPECT_GT(differing, 15);
}

TEST(RngTest, UniformStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const int64_t value = rng.Uniform(-3, 12);
    EXPECT_GE(value, -3);
    EXPECT_LE(value, 12);
  }
}

TEST(RngTest, UniformCoversRange) {
  Rng rng(99);
  std::set<int64_t> values;
  for (int i = 0; i < 1000; ++i) values.insert(rng.Uniform(0, 9));
  EXPECT_EQ(values.size(), 10u);
}

TEST(RngTest, UniformSingleton) {
  Rng rng(5);
  EXPECT_EQ(rng.Uniform(4, 4), 4);
}

TEST(RngTest, UniformIsApproximatelyUniform) {
  Rng rng(42);
  std::map<int64_t, int> histogram;
  const int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) histogram[rng.Uniform(0, 4)]++;
  for (const auto& [value, count] : histogram) {
    EXPECT_NEAR(count, kSamples / 5, kSamples / 50) << "value " << value;
  }
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(BitVectorTest, SetTestClear) {
  BitVector bits(130);
  EXPECT_FALSE(bits.Test(0));
  bits.Set(0);
  bits.Set(64);
  bits.Set(129);
  EXPECT_TRUE(bits.Test(0));
  EXPECT_TRUE(bits.Test(64));
  EXPECT_TRUE(bits.Test(129));
  EXPECT_FALSE(bits.Test(1));
  bits.Clear(64);
  EXPECT_FALSE(bits.Test(64));
  EXPECT_EQ(bits.Count(), 2u);
}

TEST(BitVectorTest, TestAndSet) {
  BitVector bits(10);
  EXPECT_TRUE(bits.TestAndSet(3));
  EXPECT_FALSE(bits.TestAndSet(3));
  EXPECT_EQ(bits.Count(), 1u);
}

TEST(BitVectorTest, ResetClearsAll) {
  BitVector bits(100);
  for (size_t i = 0; i < 100; i += 7) bits.Set(i);
  bits.Reset();
  EXPECT_EQ(bits.Count(), 0u);
}

TEST(BitVectorTest, UnionAndIntersect) {
  BitVector a(70), b(70);
  a.Set(1);
  a.Set(65);
  b.Set(1);
  b.Set(2);
  BitVector u = a;
  u.UnionWith(b);
  EXPECT_EQ(u.Count(), 3u);
  BitVector i = a;
  i.IntersectWith(b);
  EXPECT_EQ(i.Count(), 1u);
  EXPECT_TRUE(i.Test(1));
}

TEST(EpochSetTest, InsertAndContains) {
  EpochSet set(50);
  EXPECT_FALSE(set.Contains(10));
  set.Insert(10);
  EXPECT_TRUE(set.Contains(10));
  EXPECT_FALSE(set.InsertIfAbsent(10));
  EXPECT_TRUE(set.InsertIfAbsent(11));
}

TEST(EpochSetTest, ClearAllIsO1AndComplete) {
  EpochSet set(100);
  for (size_t i = 0; i < 100; ++i) set.Insert(i);
  set.ClearAll();
  for (size_t i = 0; i < 100; ++i) EXPECT_FALSE(set.Contains(i));
}

TEST(EpochSetTest, SurvivesManyEpochs) {
  EpochSet set(4);
  for (int round = 0; round < 100000; ++round) {
    set.Insert(round % 4);
    set.ClearAll();
  }
  for (size_t i = 0; i < 4; ++i) EXPECT_FALSE(set.Contains(i));
}

TEST(StatAccumulatorTest, BasicMoments) {
  StatAccumulator acc;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) acc.Add(x);
  EXPECT_EQ(acc.count(), 8);
  EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
  EXPECT_DOUBLE_EQ(acc.min(), 2.0);
  EXPECT_DOUBLE_EQ(acc.max(), 9.0);
  EXPECT_NEAR(acc.stddev(), 2.138, 1e-3);
}

TEST(StatAccumulatorTest, EmptyIsZero) {
  StatAccumulator acc;
  EXPECT_EQ(acc.count(), 0);
  EXPECT_EQ(acc.mean(), 0.0);
  EXPECT_EQ(acc.stddev(), 0.0);
}

TEST(StatAccumulatorTest, MergeMatchesSequential) {
  StatAccumulator all, left, right;
  for (int i = 0; i < 50; ++i) {
    const double x = i * 0.37 - 3;
    all.Add(x);
    (i % 2 == 0 ? left : right).Add(x);
  }
  left.Merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-9);
  EXPECT_EQ(left.min(), all.min());
  EXPECT_EQ(left.max(), all.max());
}

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter table({"name", "value"});
  table.NewRow().AddCell("x").AddCell(int64_t{12345});
  table.NewRow().AddCell("longer").AddCell(3.14159, 2);
  const std::string out = table.ToString();
  EXPECT_NE(out.find("| name   | value |"), std::string::npos);
  EXPECT_NE(out.find("| longer | 3.14  |"), std::string::npos);
}

TEST(TablePrinterTest, HandlesMissingCells) {
  TablePrinter table({"a", "b", "c"});
  table.NewRow().AddCell("only");
  const std::string out = table.ToString();
  EXPECT_NE(out.find("| only |"), std::string::npos);
}

TEST(EnvTest, ParsesInteger) {
  setenv("TCDB_TEST_ENV", "42", 1);
  EXPECT_EQ(GetEnvInt("TCDB_TEST_ENV", 0), 42);
  unsetenv("TCDB_TEST_ENV");
  EXPECT_EQ(GetEnvInt("TCDB_TEST_ENV", 7), 7);
}

TEST(EnvTest, RejectsGarbage) {
  setenv("TCDB_TEST_ENV", "12abc", 1);
  EXPECT_EQ(GetEnvInt("TCDB_TEST_ENV", 7), 7);
  unsetenv("TCDB_TEST_ENV");
}

TEST(EnvTest, BoolSemantics) {
  setenv("TCDB_TEST_ENV", "1", 1);
  EXPECT_TRUE(GetEnvBool("TCDB_TEST_ENV"));
  setenv("TCDB_TEST_ENV", "0", 1);
  EXPECT_FALSE(GetEnvBool("TCDB_TEST_ENV"));
  unsetenv("TCDB_TEST_ENV");
  EXPECT_FALSE(GetEnvBool("TCDB_TEST_ENV"));
}

}  // namespace
}  // namespace tcdb
