// B+-tree tests: bulk load, search, lower bound, inserts with splits,
// invariants, and equivalence with std::map under random workloads.

#include <gtest/gtest.h>

#include <map>

#include "index/bplus_tree.h"
#include "util/random.h"

namespace tcdb {
namespace {

class BPlusTreeTest : public testing::Test {
 protected:
  BPlusTreeTest()
      : file_(pager_.CreateFile("index")),
        buffers_(&pager_, 64, PagePolicy::kLru),
        tree_(&buffers_, file_) {}

  Pager pager_;
  FileId file_;
  BufferManager buffers_;
  BPlusTree tree_;
};

TEST_F(BPlusTreeTest, EmptyTree) {
  EXPECT_EQ(tree_.size(), 0);
  EXPECT_FALSE(tree_.Search(5).ok());
  auto lb = tree_.LowerBound(0);
  ASSERT_TRUE(lb.ok());
  EXPECT_FALSE(lb.value().has_value());
  EXPECT_TRUE(tree_.CheckInvariants().ok());
}

TEST_F(BPlusTreeTest, BulkLoadAndSearch) {
  std::vector<std::pair<uint32_t, uint32_t>> entries;
  for (uint32_t k = 0; k < 2000; k += 2) entries.emplace_back(k, k * 10);
  ASSERT_TRUE(tree_.BulkLoad(entries).ok());
  EXPECT_EQ(tree_.size(), 1000);
  EXPECT_GE(tree_.height(), 2u);  // 1000 entries > 255 per leaf
  ASSERT_TRUE(tree_.CheckInvariants().ok()) << "invariants";
  for (uint32_t k = 0; k < 2000; k += 2) {
    auto found = tree_.Search(k);
    ASSERT_TRUE(found.ok()) << k;
    EXPECT_EQ(found.value(), k * 10);
  }
  // Odd keys are absent.
  for (uint32_t k = 1; k < 100; k += 2) {
    EXPECT_FALSE(tree_.Search(k).ok()) << k;
  }
}

TEST_F(BPlusTreeTest, BulkLoadRejectsUnsorted) {
  EXPECT_FALSE(tree_.BulkLoad({{2, 0}, {1, 0}}).ok());
  EXPECT_FALSE(tree_.BulkLoad({{1, 0}, {1, 1}}).ok());
}

TEST_F(BPlusTreeTest, BulkLoadTwiceFails) {
  ASSERT_TRUE(tree_.BulkLoad({{1, 1}}).ok());
  EXPECT_EQ(tree_.BulkLoad({{2, 2}}).code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(BPlusTreeTest, LowerBoundSemantics) {
  ASSERT_TRUE(tree_.BulkLoad({{10, 1}, {20, 2}, {30, 3}}).ok());
  auto lb = tree_.LowerBound(15);
  ASSERT_TRUE(lb.ok());
  ASSERT_TRUE(lb.value().has_value());
  EXPECT_EQ(lb.value()->first, 20u);
  EXPECT_EQ(lb.value()->second, 2u);
  lb = tree_.LowerBound(10);
  EXPECT_EQ(lb.value()->first, 10u);
  lb = tree_.LowerBound(31);
  EXPECT_FALSE(lb.value().has_value());
}

TEST_F(BPlusTreeTest, LowerBoundCrossesLeaves) {
  std::vector<std::pair<uint32_t, uint32_t>> entries;
  for (uint32_t k = 0; k < 600; ++k) entries.emplace_back(k * 10, k);
  ASSERT_TRUE(tree_.BulkLoad(entries).ok());
  // Just past the last key of some leaf.
  for (uint32_t probe : {2541u, 2549u, 5985u}) {
    auto lb = tree_.LowerBound(probe);
    ASSERT_TRUE(lb.ok());
    ASSERT_TRUE(lb.value().has_value()) << probe;
    EXPECT_EQ(lb.value()->first, ((probe + 9) / 10) * 10) << probe;
  }
  // Past the maximum key: no result.
  auto past = tree_.LowerBound(5991);
  ASSERT_TRUE(past.ok());
  EXPECT_FALSE(past.value().has_value());
}

TEST_F(BPlusTreeTest, InsertGrowsAndSplits) {
  // Enough inserts to force leaf and internal splits (capacity 255).
  for (uint32_t k = 0; k < 3000; ++k) {
    ASSERT_TRUE(tree_.Insert(k * 7 % 65536, k).ok()) << k;
  }
  EXPECT_EQ(tree_.size(), 3000);
  EXPECT_GE(tree_.height(), 2u);
  ASSERT_TRUE(tree_.CheckInvariants().ok());
  EXPECT_EQ(tree_.Search(7).value(), 1u);
}

TEST_F(BPlusTreeTest, InsertRejectsDuplicates) {
  ASSERT_TRUE(tree_.Insert(5, 1).ok());
  EXPECT_EQ(tree_.Insert(5, 2).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(tree_.size(), 1);
}

TEST_F(BPlusTreeTest, ScanAllIsSorted) {
  for (uint32_t k : {5u, 3u, 9u, 1u, 7u}) {
    ASSERT_TRUE(tree_.Insert(k, k + 100).ok());
  }
  std::vector<std::pair<uint32_t, uint32_t>> out;
  ASSERT_TRUE(tree_.ScanAll(&out).ok());
  const std::vector<std::pair<uint32_t, uint32_t>> expected = {
      {1, 101}, {3, 103}, {5, 105}, {7, 107}, {9, 109}};
  EXPECT_EQ(out, expected);
}

TEST_F(BPlusTreeTest, RandomizedEquivalenceWithStdMap) {
  Rng rng(2024);
  std::map<uint32_t, uint32_t> oracle;
  for (int i = 0; i < 5000; ++i) {
    const uint32_t key = static_cast<uint32_t>(rng.Uniform(0, 20000));
    const uint32_t value = static_cast<uint32_t>(rng.Uniform(0, 1 << 30));
    const Status status = tree_.Insert(key, value);
    if (oracle.contains(key)) {
      EXPECT_FALSE(status.ok());
    } else {
      EXPECT_TRUE(status.ok());
      oracle[key] = value;
    }
  }
  ASSERT_TRUE(tree_.CheckInvariants().ok());
  EXPECT_EQ(tree_.size(), static_cast<int64_t>(oracle.size()));
  // Point lookups.
  Rng probe_rng(77);
  for (int i = 0; i < 2000; ++i) {
    const uint32_t key = static_cast<uint32_t>(probe_rng.Uniform(0, 20000));
    auto found = tree_.Search(key);
    if (oracle.contains(key)) {
      ASSERT_TRUE(found.ok()) << key;
      EXPECT_EQ(found.value(), oracle[key]);
    } else {
      EXPECT_FALSE(found.ok()) << key;
    }
  }
  // Full scan equals the oracle.
  std::vector<std::pair<uint32_t, uint32_t>> out;
  ASSERT_TRUE(tree_.ScanAll(&out).ok());
  std::vector<std::pair<uint32_t, uint32_t>> expected(oracle.begin(),
                                                      oracle.end());
  EXPECT_EQ(out, expected);
}

TEST_F(BPlusTreeTest, IndexProbesCostIo) {
  std::vector<std::pair<uint32_t, uint32_t>> entries;
  for (uint32_t k = 0; k < 1000; ++k) entries.emplace_back(k, k);
  ASSERT_TRUE(tree_.BulkLoad(entries).ok());
  buffers_.FlushAll();
  buffers_.DiscardAll();
  pager_.ResetStats();
  ASSERT_TRUE(tree_.Search(999).ok());
  // Cold search reads height() pages.
  EXPECT_EQ(pager_.stats().Total().reads, tree_.height());
}

TEST_F(BPlusTreeTest, WorksWithTinyBufferPool) {
  BufferManager small(&pager_, 3, PagePolicy::kLru);
  BPlusTree tree(&small, pager_.CreateFile("small_index"));
  std::vector<std::pair<uint32_t, uint32_t>> entries;
  for (uint32_t k = 0; k < 5000; ++k) entries.emplace_back(k, k ^ 0xabc);
  ASSERT_TRUE(tree.BulkLoad(entries).ok());
  ASSERT_TRUE(tree.CheckInvariants().ok());
  for (uint32_t k = 0; k < 5000; k += 97) {
    EXPECT_EQ(tree.Search(k).value(), k ^ 0xabc);
  }
}

}  // namespace
}  // namespace tcdb
