// TcDatabase / executor semantics: input validation, condensation path,
// phase attribution, metric invariants, cross-algorithm answer agreement,
// and insensitivity of correctness to policies and pool sizes.

#include <gtest/gtest.h>

#include "core/database.h"
#include "graph/algorithms.h"
#include "graph/generator.h"

namespace tcdb {
namespace {

TEST(DatabaseCreateTest, RejectsBadInputs) {
  EXPECT_FALSE(TcDatabase::Create({}, 0).ok());
  EXPECT_FALSE(TcDatabase::Create({Arc{0, 5}}, 3).ok());   // out of range
  EXPECT_FALSE(TcDatabase::Create({Arc{-1, 0}}, 3).ok());  // negative
  EXPECT_FALSE(
      TcDatabase::Create({Arc{1, 2}, Arc{0, 1}}, 3).ok());  // unsorted
  EXPECT_FALSE(
      TcDatabase::Create({Arc{0, 1}, Arc{0, 1}}, 3).ok());  // duplicate
  EXPECT_FALSE(
      TcDatabase::Create({Arc{0, 1}, Arc{1, 0}}, 2).ok());  // cyclic
}

TEST(DatabaseCreateTest, AcceptsValidDag) {
  auto db = TcDatabase::Create({Arc{0, 1}, Arc{1, 2}}, 3);
  ASSERT_TRUE(db.ok());
  EXPECT_EQ(db.value()->num_nodes(), 3);
  EXPECT_EQ(db.value()->arcs().size(), 2u);
}

TEST(DatabaseCreateTest, CondenseInputHandlesCycles) {
  // 0 <-> 1 cycle feeding 2.
  auto condensed =
      TcDatabase::CondenseInput({Arc{0, 1}, Arc{1, 0}, Arc{1, 2}}, 3);
  ASSERT_TRUE(condensed.ok());
  EXPECT_EQ(condensed.value().database->num_nodes(), 2);
  EXPECT_EQ(condensed.value().node_map[0], condensed.value().node_map[1]);
}

TEST(DatabaseExecuteTest, RejectsBadQueries) {
  auto db = TcDatabase::Create({Arc{0, 1}}, 2);
  ASSERT_TRUE(db.ok());
  EXPECT_FALSE(
      db.value()->Execute(Algorithm::kBtc, QuerySpec::Partial({7}), {}).ok());
  ExecOptions tiny;
  tiny.buffer_pages = 2;
  EXPECT_FALSE(
      db.value()->Execute(Algorithm::kBtc, QuerySpec::Full(), tiny).ok());
}

TEST(DatabaseExecuteTest, SetupIoIsExcluded) {
  // The measured I/O must not include loading the relation: a trivial query
  // on a large relation should report I/O proportional to the magic
  // subgraph, not the whole file.
  const ArcList arcs = GenerateDag({1000, 10, 100, 3});
  auto db = TcDatabase::Create(arcs, 1000);
  ASSERT_TRUE(db.ok());
  // Source with no outgoing arcs anywhere near the end.
  auto run =
      db.value()->Execute(Algorithm::kBtc, QuerySpec::Partial({999}), {});
  ASSERT_TRUE(run.ok());
  // A couple of index/data page reads, nothing like the ~40 relation pages.
  EXPECT_LE(run.value().metrics.TotalIo(), 10u);
}

TEST(DatabaseExecuteTest, MetricInvariantsHold) {
  const ArcList arcs = GenerateDag({300, 5, 60, 5});
  auto db = TcDatabase::Create(arcs, 300);
  ASSERT_TRUE(db.ok());
  for (const Algorithm algorithm :
       {Algorithm::kBtc, Algorithm::kBj, Algorithm::kSpn, Algorithm::kJkb2}) {
    auto run = db.value()->Execute(
        algorithm, QuerySpec::Partial(SampleSourceNodes(300, 8, 9)), {});
    ASSERT_TRUE(run.ok()) << AlgorithmName(algorithm);
    const RunMetrics& m = run.value().metrics;
    EXPECT_GT(m.TotalIo(), 0u) << AlgorithmName(algorithm);
    EXPECT_EQ(m.list_unions, m.arcs_processed - m.arcs_marked)
        << AlgorithmName(algorithm);
    EXPECT_GE(m.tuples_generated, m.tuples_inserted);
    EXPECT_GE(m.magic_nodes, 8);
    EXPECT_LE(m.magic_nodes, 300);
    EXPECT_GE(m.selected_tuples, 0);
    EXPECT_GE(m.compute_list_hits + m.compute_list_misses, 0u);
  }
}

TEST(DatabaseExecuteTest, MagicGraphSmallerForSelectiveQueries) {
  const ArcList arcs = GenerateDag({1000, 3, 25, 11});
  auto db = TcDatabase::Create(arcs, 1000);
  ASSERT_TRUE(db.ok());
  auto full = db.value()->Execute(Algorithm::kBtc, QuerySpec::Full(), {});
  auto partial = db.value()->Execute(
      Algorithm::kBtc, QuerySpec::Partial({500}), {});
  ASSERT_TRUE(full.ok());
  ASSERT_TRUE(partial.ok());
  EXPECT_EQ(full.value().metrics.magic_nodes, 1000);
  EXPECT_LT(partial.value().metrics.magic_nodes, 600);
  EXPECT_LT(partial.value().metrics.TotalIo(),
            full.value().metrics.TotalIo());
}

TEST(DatabaseExecuteTest, AnswerIndependentOfPoliciesAndPoolSize) {
  const ArcList arcs = GenerateDag({250, 6, 50, 13});
  auto db = TcDatabase::Create(arcs, 250);
  ASSERT_TRUE(db.ok());
  const QuerySpec query = QuerySpec::Partial(SampleSourceNodes(250, 6, 3));

  ExecOptions reference_options;
  reference_options.capture_answer = true;
  auto reference =
      db.value()->Execute(Algorithm::kBtc, query, reference_options);
  ASSERT_TRUE(reference.ok());

  for (const PagePolicy page_policy :
       {PagePolicy::kMru, PagePolicy::kFifo, PagePolicy::kClock,
        PagePolicy::kRandom}) {
    for (const ListPolicy list_policy :
         {ListPolicy::kMoveLargest, ListPolicy::kMoveNewest}) {
      for (const size_t buffer_pages : {4u, 11u, 64u}) {
        ExecOptions options;
        options.page_policy = page_policy;
        options.list_policy = list_policy;
        options.buffer_pages = buffer_pages;
        options.capture_answer = true;
        auto run = db.value()->Execute(Algorithm::kBtc, query, options);
        ASSERT_TRUE(run.ok());
        EXPECT_EQ(run.value().answer, reference.value().answer)
            << PagePolicyName(page_policy) << "/"
            << ListPolicyName(list_policy) << "/M=" << buffer_pages;
      }
    }
  }
}

TEST(DatabaseExecuteTest, MarkingAblationPreservesAnswerAndAddsUnions) {
  const ArcList arcs = GenerateDag({300, 8, 100, 17});
  auto db = TcDatabase::Create(arcs, 300);
  ASSERT_TRUE(db.ok());
  ExecOptions with;
  with.capture_answer = true;
  ExecOptions without = with;
  without.use_marking = false;
  auto marked = db.value()->Execute(Algorithm::kBtc, QuerySpec::Full(), with);
  auto unmarked =
      db.value()->Execute(Algorithm::kBtc, QuerySpec::Full(), without);
  ASSERT_TRUE(marked.ok());
  ASSERT_TRUE(unmarked.ok());
  EXPECT_EQ(marked.value().answer, unmarked.value().answer);
  EXPECT_GT(marked.value().metrics.arcs_marked, 0);
  EXPECT_EQ(unmarked.value().metrics.arcs_marked, 0);
  EXPECT_GT(unmarked.value().metrics.list_unions,
            marked.value().metrics.list_unions);
  EXPECT_GE(unmarked.value().metrics.tuples_generated,
            marked.value().metrics.tuples_generated);
}

TEST(DatabaseExecuteTest, DeterministicAcrossRepeatedRuns) {
  const ArcList arcs = GenerateDag({200, 5, 40, 23});
  auto db = TcDatabase::Create(arcs, 200);
  ASSERT_TRUE(db.ok());
  const QuerySpec query = QuerySpec::Partial({10, 20, 30});
  auto a = db.value()->Execute(Algorithm::kJkb2, query, {});
  auto b = db.value()->Execute(Algorithm::kJkb2, query, {});
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.value().metrics.TotalIo(), b.value().metrics.TotalIo());
  EXPECT_EQ(a.value().metrics.tuples_generated,
            b.value().metrics.tuples_generated);
  EXPECT_EQ(a.value().metrics.list_unions, b.value().metrics.list_unions);
}

TEST(DatabaseExecuteTest, HybMatchesBtcWhenIlimitZero) {
  const ArcList arcs = GenerateDag({300, 10, 100, 29});
  auto db = TcDatabase::Create(arcs, 300);
  ASSERT_TRUE(db.ok());
  ExecOptions options;
  options.ilimit = 0.0;
  auto hyb = db.value()->Execute(Algorithm::kHyb, QuerySpec::Full(), options);
  auto btc = db.value()->Execute(Algorithm::kBtc, QuerySpec::Full(), options);
  ASSERT_TRUE(hyb.ok());
  ASSERT_TRUE(btc.ok());
  EXPECT_EQ(hyb.value().metrics.TotalIo(), btc.value().metrics.TotalIo());
  EXPECT_EQ(hyb.value().metrics.list_unions,
            btc.value().metrics.list_unions);
}

TEST(DatabaseExecuteTest, AnalyzeMatchesExecutionClosureSize) {
  const ArcList arcs = GenerateDag({400, 5, 80, 31});
  auto db = TcDatabase::Create(arcs, 400);
  ASSERT_TRUE(db.ok());
  auto model = db.value()->Analyze();
  ASSERT_TRUE(model.ok());
  auto run = db.value()->Execute(Algorithm::kBtc, QuerySpec::Full(), {});
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(run.value().metrics.distinct_tuples,
            model.value().closure_size);
}

}  // namespace
}  // namespace tcdb
