// Successor-list store tests: page/block geometry, append/read round
// trips, clustering, truncation, pinning, the list replacement policies,
// and write-out semantics.

#include <gtest/gtest.h>

#include <algorithm>

#include "succ/successor_list_store.h"
#include "util/random.h"

namespace tcdb {
namespace {

class SuccStoreTest : public testing::Test {
 protected:
  SuccStoreTest()
      : file_(pager_.CreateFile("succ")),
        buffers_(&pager_, 16, PagePolicy::kLru) {}

  std::unique_ptr<SuccessorListStore> MakeStore(
      int32_t num_lists, ListPolicy policy = ListPolicy::kMoveSelf) {
    auto store = std::make_unique<SuccessorListStore>(&buffers_, file_, policy);
    store->Reset(num_lists);
    return store;
  }

  std::vector<int32_t> ReadAll(SuccessorListStore* store, int32_t list) {
    std::vector<int32_t> out;
    EXPECT_TRUE(store->Read(list, &out).ok());
    return out;
  }

  Pager pager_;
  FileId file_;
  BufferManager buffers_;
};

TEST_F(SuccStoreTest, Geometry) {
  EXPECT_EQ(kBlocksPerPage, 30);
  EXPECT_EQ(kEntriesPerBlock, 15);
  EXPECT_EQ(kEntriesPerListPage, 450);  // paper: 450 successors per page
  EXPECT_LE(static_cast<size_t>(kEntriesPerListPage) * sizeof(int32_t),
            kPageSize);
}

TEST_F(SuccStoreTest, AppendReadRoundTrip) {
  auto store = MakeStore(3);
  ASSERT_TRUE(store->Append(0, 7).ok());
  ASSERT_TRUE(store->Append(0, -9).ok());
  ASSERT_TRUE(store->Append(2, 1).ok());
  EXPECT_EQ(ReadAll(store.get(), 0), (std::vector<int32_t>{7, -9}));
  EXPECT_EQ(ReadAll(store.get(), 1), std::vector<int32_t>{});
  EXPECT_EQ(ReadAll(store.get(), 2), std::vector<int32_t>{1});
  EXPECT_EQ(store->ListLength(0), 2);
  EXPECT_EQ(store->TotalEntries(), 3);
}

TEST_F(SuccStoreTest, AppendManySpansBlocksAndPages) {
  auto store = MakeStore(1);
  std::vector<int32_t> values(1000);
  for (int i = 0; i < 1000; ++i) values[i] = i * 3;
  ASSERT_TRUE(store->AppendMany(0, values).ok());
  EXPECT_EQ(ReadAll(store.get(), 0), values);
  // 1000 entries = 67 blocks; first page has 30 blocks, so at least 3 pages.
  EXPECT_GE(store->NumPages(), 3u);
}

TEST_F(SuccStoreTest, InterListClusteringSharesPages) {
  auto store = MakeStore(30);
  for (int32_t list = 0; list < 30; ++list) {
    ASSERT_TRUE(store->Append(list, list).ok());
  }
  // 30 lists of one block each fit exactly one page.
  EXPECT_EQ(store->NumPages(), 1u);
}

TEST_F(SuccStoreTest, IntraListClusteringPrefersOwnPage) {
  auto store = MakeStore(2);
  ASSERT_TRUE(store->Append(0, 1).ok());
  ASSERT_TRUE(store->Append(1, 2).ok());
  // Growing list 0 by a few blocks stays on page 0 while it has room.
  std::vector<int32_t> more(100, 5);
  ASSERT_TRUE(store->AppendMany(0, more).ok());
  EXPECT_EQ(store->NumPages(), 1u);
}

TEST_F(SuccStoreTest, EntryCountersTrackTraffic) {
  auto store = MakeStore(2);
  std::vector<int32_t> values(20, 1);
  ASSERT_TRUE(store->AppendMany(0, values).ok());
  ReadAll(store.get(), 0);
  ReadAll(store.get(), 0);
  EXPECT_EQ(store->entries_written(), 20);
  EXPECT_EQ(store->entries_read(), 40);
  EXPECT_EQ(store->lists_read(), 2);
}

TEST_F(SuccStoreTest, TruncateEmptiesAndReusesPage) {
  auto store = MakeStore(2);
  std::vector<int32_t> values(50, 9);
  ASSERT_TRUE(store->AppendMany(0, values).ok());
  ASSERT_TRUE(store->Append(1, 3).ok());
  const PageNumber pages_before = store->NumPages();
  store->Truncate(0);
  EXPECT_EQ(store->ListLength(0), 0);
  EXPECT_EQ(ReadAll(store.get(), 0), std::vector<int32_t>{});
  EXPECT_EQ(ReadAll(store.get(), 1), std::vector<int32_t>{3});
  // Rewriting a similar amount reuses the freed blocks: no page growth.
  ASSERT_TRUE(store->AppendMany(0, values).ok());
  EXPECT_EQ(store->NumPages(), pages_before);
  EXPECT_EQ(ReadAll(store.get(), 0), values);
}

TEST_F(SuccStoreTest, ResetClearsEverything) {
  auto store = MakeStore(2);
  ASSERT_TRUE(store->Append(0, 1).ok());
  store->Reset(5);
  EXPECT_EQ(store->num_lists(), 5);
  EXPECT_EQ(store->TotalEntries(), 0);
  EXPECT_EQ(store->NumPages(), 0u);
  EXPECT_EQ(store->entries_written(), 0);
}

TEST_F(SuccStoreTest, ListPagesReportsUniquePagesInOrder) {
  auto store = MakeStore(1);
  std::vector<int32_t> values(900, 2);  // exactly two pages
  ASSERT_TRUE(store->AppendMany(0, values).ok());
  const auto pages = store->ListPages(0);
  EXPECT_EQ(pages.size(), 2u);
  EXPECT_NE(pages[0], pages[1]);
}

TEST_F(SuccStoreTest, PinListPagesPreventsEviction) {
  auto store = MakeStore(1);
  std::vector<int32_t> values(450, 4);
  ASSERT_TRUE(store->AppendMany(0, values).ok());
  {
    Result<std::vector<PageGuard>> guards = store->PinListPages(0);
    ASSERT_TRUE(guards.ok());
    EXPECT_GE(buffers_.PinnedCount(), 1u);
  }
  // Guards released their pins at scope exit.
  EXPECT_EQ(buffers_.PinnedCount(), 0u);
  EXPECT_TRUE(buffers_.AuditNoPins().ok());
}

TEST_F(SuccStoreTest, PinFailureReleasesPartialPins) {
  BufferManager tiny(&pager_, 4, PagePolicy::kLru);
  SuccessorListStore store(&tiny, pager_.CreateFile("tiny"), ListPolicy::kMoveSelf);
  store.Reset(1);
  std::vector<int32_t> values(450 * 6, 1);  // 6 pages > 4 frames
  ASSERT_TRUE(store.AppendMany(0, values).ok());
  Result<std::vector<PageGuard>> guards = store.PinListPages(0);
  EXPECT_EQ(guards.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(tiny.PinnedCount(), 0u);
  EXPECT_TRUE(tiny.AuditNoPins().ok());
}

TEST_F(SuccStoreTest, FinalizeFlushesKeptAndDropsRest) {
  auto store = MakeStore(60);
  // Two pages worth of lists: lists 0..29 on page 0, lists 30..59 on page 1.
  for (int32_t list = 0; list < 60; ++list) {
    ASSERT_TRUE(store->Append(list, list).ok());
  }
  ASSERT_EQ(store->NumPages(), 2u);
  pager_.ResetStats();
  std::vector<bool> keep(60, false);
  keep[5] = true;  // page 0 must be flushed; page 1 dropped.
  store->FinalizeKeepLists(keep);
  EXPECT_EQ(pager_.stats().ForFile(file_).writes, 1u);
  EXPECT_FALSE(buffers_.IsCached({file_, 1}));
}

TEST_F(SuccStoreTest, MoveSelfContinuesOnFreshPage) {
  auto store = MakeStore(31, ListPolicy::kMoveSelf);
  // Fill page 0 with 30 single-block lists, then grow list 0 past its block.
  for (int32_t list = 0; list < 30; ++list) {
    ASSERT_TRUE(store->Append(list, list).ok());
  }
  std::vector<int32_t> more(30, 7);
  ASSERT_TRUE(store->AppendMany(0, more).ok());
  EXPECT_EQ(store->NumPages(), 2u);
  EXPECT_EQ(store->list_moves(), 0);  // move-self does not count as a move
  // Other lists remain intact.
  EXPECT_EQ(ReadAll(store.get(), 7), std::vector<int32_t>{7});
  std::vector<int32_t> expected = {0};
  expected.insert(expected.end(), more.begin(), more.end());
  EXPECT_EQ(ReadAll(store.get(), 0), expected);
}

TEST_F(SuccStoreTest, MoveLargestRelocatesVictim) {
  auto store = MakeStore(3, ListPolicy::kMoveLargest);
  // List 1 is the largest co-tenant (20 blocks), list 2 is small; fill the
  // rest of page 0 with list 0.
  std::vector<int32_t> big(20 * kEntriesPerBlock, 1);
  ASSERT_TRUE(store->AppendMany(1, big).ok());
  ASSERT_TRUE(store->Append(2, 2).ok());
  std::vector<int32_t> mine(9 * kEntriesPerBlock, 0);
  ASSERT_TRUE(store->AppendMany(0, mine).ok());
  ASSERT_EQ(store->NumPages(), 1u);
  // Growing list 0 forces a split; list 1 (largest other) is relocated.
  ASSERT_TRUE(store->Append(0, 0).ok());
  EXPECT_EQ(store->list_moves(), 1);
  EXPECT_EQ(store->NumPages(), 2u);
  // All contents intact after relocation.
  EXPECT_EQ(ReadAll(store.get(), 1), big);
  EXPECT_EQ(ReadAll(store.get(), 2), std::vector<int32_t>{2});
  mine.push_back(0);
  EXPECT_EQ(ReadAll(store.get(), 0), mine);
  // List 0's new block is on page 0 (the split freed space in place).
  EXPECT_EQ(store->ListPages(0), std::vector<PageNumber>{0});
}

TEST_F(SuccStoreTest, MoveNewestRelocatesMostRecentlyGrown) {
  auto store = MakeStore(3, ListPolicy::kMoveNewest);
  std::vector<int32_t> chunk(10 * kEntriesPerBlock, 3);
  ASSERT_TRUE(store->AppendMany(1, chunk).ok());   // older
  ASSERT_TRUE(store->AppendMany(2, chunk).ok());   // newer
  std::vector<int32_t> mine(10 * kEntriesPerBlock, 0);
  ASSERT_TRUE(store->AppendMany(0, mine).ok());    // newest (the grower)
  ASSERT_EQ(store->NumPages(), 1u);
  ASSERT_TRUE(store->Append(0, 5).ok());
  EXPECT_EQ(store->list_moves(), 1);
  // List 2 (most recently grown other than the grower) moved to page 1.
  EXPECT_EQ(store->ListPages(2), std::vector<PageNumber>{1});
  EXPECT_EQ(store->ListPages(1), std::vector<PageNumber>{0});
  EXPECT_EQ(ReadAll(store.get(), 2), chunk);
}

TEST_F(SuccStoreTest, RandomizedRoundTripAcrossPolicies) {
  for (const ListPolicy policy :
       {ListPolicy::kMoveSelf, ListPolicy::kMoveLargest,
        ListPolicy::kMoveNewest}) {
    Pager pager;
    BufferManager buffers(&pager, 8, PagePolicy::kLru);
    SuccessorListStore store(&buffers, pager.CreateFile("x"), policy);
    const int32_t kLists = 40;
    store.Reset(kLists);
    std::vector<std::vector<int32_t>> oracle(kLists);
    Rng rng(1234);
    for (int round = 0; round < 3000; ++round) {
      const int32_t list = static_cast<int32_t>(rng.Uniform(0, kLists - 1));
      if (rng.Bernoulli(0.02)) {
        store.Truncate(list);
        oracle[list].clear();
        continue;
      }
      const int count = static_cast<int>(rng.Uniform(1, 8));
      std::vector<int32_t> values;
      for (int i = 0; i < count; ++i) {
        values.push_back(static_cast<int32_t>(rng.Uniform(-1000, 1000)));
      }
      ASSERT_TRUE(store.AppendMany(list, values).ok());
      oracle[list].insert(oracle[list].end(), values.begin(), values.end());
    }
    for (int32_t list = 0; list < kLists; ++list) {
      std::vector<int32_t> out;
      ASSERT_TRUE(store.Read(list, &out).ok());
      EXPECT_EQ(out, oracle[list])
          << "policy " << ListPolicyName(policy) << " list " << list;
    }
  }
}

TEST_F(SuccStoreTest, RemoveRoundTripAndNotFound) {
  auto store = MakeStore(2);
  const std::vector<int32_t> initial = {10, 20, 30, 40};
  ASSERT_TRUE(store->AppendMany(0, initial).ok());
  ASSERT_TRUE(store->Remove(0, 20).ok());
  // Order is not preserved: the final entry fills the hole.
  std::vector<int32_t> out = ReadAll(store.get(), 0);
  std::sort(out.begin(), out.end());
  EXPECT_EQ(out, (std::vector<int32_t>{10, 30, 40}));
  EXPECT_EQ(store->ListLength(0), 3);
  EXPECT_EQ(store->entries_removed(), 1);
  EXPECT_EQ(store->Remove(0, 99).code(), StatusCode::kNotFound);
  EXPECT_EQ(store->Remove(1, 10).code(), StatusCode::kNotFound);
}

TEST_F(SuccStoreTest, RemoveLastEntryEmptiesListAndAllowsReuse) {
  auto store = MakeStore(1);
  ASSERT_TRUE(store->Append(0, 7).ok());
  ASSERT_TRUE(store->Remove(0, 7).ok());
  EXPECT_EQ(store->ListLength(0), 0);
  EXPECT_EQ(ReadAll(store.get(), 0), std::vector<int32_t>{});
  // The emptied list forgot its preferred page; growing it again works.
  ASSERT_TRUE(store->Append(0, 8).ok());
  EXPECT_EQ(ReadAll(store.get(), 0), std::vector<int32_t>{8});
  EXPECT_TRUE(buffers_.AuditNoPins().ok());
}

TEST_F(SuccStoreTest, RemoveDiscardsFullyFreedPage) {
  auto store = MakeStore(1);
  std::vector<int32_t> values(900);  // exactly two pages of one list
  for (int i = 0; i < 900; ++i) values[i] = i;
  ASSERT_TRUE(store->AppendMany(0, values).ok());
  ASSERT_EQ(store->NumPages(), 2u);
  const auto pages = store->ListPages(0);
  ASSERT_EQ(pages.size(), 2u);
  // Shrink the list below one page; the drained second page goes back to
  // the pool via DiscardPage — no write-out, no lingering frame.
  for (int i = 899; i >= 450; --i) {
    ASSERT_TRUE(store->Remove(0, i).ok());
  }
  EXPECT_EQ(store->ListLength(0), 450);
  EXPECT_EQ(store->pages_released(), 1);
  EXPECT_FALSE(buffers_.IsCached({file_, pages[1]}));
  EXPECT_EQ(store->ListPages(0), std::vector<PageNumber>{pages[0]});
  EXPECT_TRUE(buffers_.AuditNoPins().ok());
  // The surviving prefix is intact (removals above only touched the tail).
  std::vector<int32_t> out = ReadAll(store.get(), 0);
  std::sort(out.begin(), out.end());
  values.resize(450);
  EXPECT_EQ(out, values);
}

TEST_F(SuccStoreTest, RemoveFreedPageIsReusedByLaterGrowth) {
  auto store = MakeStore(2);
  std::vector<int32_t> values(900, 1);
  ASSERT_TRUE(store->AppendMany(0, values).ok());
  ASSERT_EQ(store->NumPages(), 2u);
  for (int i = 0; i < 450; ++i) {
    ASSERT_TRUE(store->Remove(0, 1).ok());
  }
  ASSERT_EQ(store->pages_released(), 1);
  // Growing another list reclaims the freed blocks: no new page.
  std::vector<int32_t> other(450, 2);
  ASSERT_TRUE(store->AppendMany(1, other).ok());
  EXPECT_EQ(store->NumPages(), 2u);
  EXPECT_EQ(ReadAll(store.get(), 1), other);
  std::vector<int32_t> out = ReadAll(store.get(), 0);
  EXPECT_EQ(out, std::vector<int32_t>(450, 1));
}

TEST_F(SuccStoreTest, PolicyNames) {
  EXPECT_STREQ(ListPolicyName(ListPolicy::kMoveSelf), "move-self");
  EXPECT_STREQ(ListPolicyName(ListPolicy::kMoveLargest), "move-largest");
  EXPECT_STREQ(ListPolicyName(ListPolicy::kMoveNewest), "move-newest");
}

}  // namespace
}  // namespace tcdb
