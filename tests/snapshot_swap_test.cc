// Epoch-based snapshot-swap tests (ctest labels: `dynamic` and
// `concurrency`; check.sh reruns this binary under ThreadSanitizer).
// Covers ReachServer::SwapCore validation and hot-swap under concurrent
// client traffic (per-pair answer monotonicity across a chain of
// insert-only cores, zero stale-cache answers after a swap) plus the
// IndexRebuilder publishing into a DynamicReachService while the owner
// thread mutates and queries.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <unordered_set>
#include <utility>
#include <vector>

#include "dynamic/dynamic_reach_service.h"
#include "dynamic/index_rebuilder.h"
#include "dynamic/mutation_log.h"
#include "graph/digraph.h"
#include "reach/reach_server.h"
#include "util/random.h"

namespace tcdb {
namespace {

std::shared_ptr<const ReachCore> MustBuild(const ArcList& arcs, NodeId n) {
  auto core = ReachCore::Build(arcs, n);
  TCDB_CHECK(core.ok()) << core.status().ToString();
  return core.value();
}

TEST(SwapCoreTest, ValidatesCoreAndEpoch) {
  const ArcList arcs = {{0, 1}};
  auto server = ReachServer::Start(arcs, 3);
  ASSERT_TRUE(server.ok());
  EXPECT_EQ(server.value()->SwapCore(nullptr, 1).code(),
            StatusCode::kInvalidArgument);
  // A core over a different input-node universe is rejected.
  EXPECT_EQ(server.value()->SwapCore(MustBuild({{0, 1}}, 5), 1).code(),
            StatusCode::kInvalidArgument);
  ASSERT_TRUE(server.value()->SwapCore(MustBuild(arcs, 3), 4).ok());
  EXPECT_EQ(server.value()->published_epoch(), 4);
  // Epochs must not decrease across swaps; equal epochs republish fine.
  EXPECT_EQ(server.value()->SwapCore(MustBuild(arcs, 3), 3).code(),
            StatusCode::kInvalidArgument);
  ASSERT_TRUE(server.value()->SwapCore(MustBuild(arcs, 3), 4).ok());
  const ReachServerStats stats = server.value()->Snapshot();
  EXPECT_EQ(stats.core_swaps, 2);
  EXPECT_EQ(stats.published_epoch, 4);
}

TEST(SwapCoreTest, WorkersAdoptSwappedCoreAndDropStaleCache) {
  // One shard so the cached answer and the follow-up query meet the same
  // service. (0, 2) is NO in the starting core; the swapped core closes
  // the chain. The second query must see the swap, not the cached NO.
  ReachServerOptions options;
  options.num_shards = 1;
  const ArcList before = {{0, 1}};
  const ArcList after = {{0, 1}, {1, 2}};
  auto server = ReachServer::Start(before, 3, options);
  ASSERT_TRUE(server.ok());

  auto first = server.value()->Query(0, 2);
  ASSERT_TRUE(first.ok());
  EXPECT_FALSE(first.value().reachable);
  // Warm the cache with the stale answer.
  ASSERT_TRUE(server.value()->Query(0, 2).ok());

  ASSERT_TRUE(server.value()->SwapCore(MustBuild(after, 3), 1).ok());
  auto second = server.value()->Query(0, 2);
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second.value().reachable);
  EXPECT_NE(second.value().stage, ReachStage::kCache);
}

// Hot swap under load. A chain of insert-only cores G_0 subset ... subset
// G_k is published with increasing epochs while client threads hammer
// fixed probe pairs. Each pair routes to one shard and every shard adopts
// cores in publication order, so the per-pair answer stream must be
// monotone: once YES, never NO again. After the final swap every pair is
// YES — a NO would be an answer from a retired epoch.
TEST(SwapCoreTest, SwapUnderLoadIsMonotoneWithoutStaleAnswers) {
  constexpr NodeId kNodes = 120;
  constexpr int kCores = 8;
  constexpr int kClients = 4;

  // Core i contains the chain prefix 0 -> 1 -> ... -> (i * step), plus a
  // static random background so the index has something to chew on.
  ArcList background;
  Rng rng(99);
  for (int i = 0; i < 200; ++i) {
    const NodeId u = static_cast<NodeId>(rng.Uniform(kNodes / 2, kNodes - 1));
    const NodeId v = static_cast<NodeId>(rng.Uniform(kNodes / 2, kNodes - 1));
    if (u != v) background.push_back(Arc{u, v});
  }
  constexpr int kStep = 7;
  std::vector<std::shared_ptr<const ReachCore>> cores;
  ArcList arcs = background;
  for (int i = 0; i < kCores; ++i) {
    if (i > 0) {
      for (int j = (i - 1) * kStep; j < i * kStep; ++j) {
        arcs.push_back(Arc{static_cast<NodeId>(j),
                           static_cast<NodeId>(j + 1)});
      }
    }
    cores.push_back(MustBuild(arcs, kNodes));
  }

  ReachServerOptions options;
  options.num_shards = 3;
  auto server = ReachServer::Start(cores[0], options);
  ASSERT_TRUE(server.ok());

  // Probe pairs along the chain: NO in core 0, YES in the final core.
  std::vector<std::pair<NodeId, NodeId>> probes;
  for (int j = 1; j < (kCores - 1) * kStep; j += 3) {
    probes.emplace_back(0, static_cast<NodeId>(j));
  }

  std::atomic<bool> stop{false};
  std::atomic<int> violations{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&] {
      // Per-thread latch per probe: per-shard adoption order makes the
      // answer stream each thread observes monotone.
      std::vector<bool> seen_yes(probes.size(), false);
      while (!stop.load(std::memory_order_relaxed)) {
        for (size_t p = 0; p < probes.size(); ++p) {
          auto answer = server.value()->Query(probes[p].first,
                                              probes[p].second);
          if (!answer.ok()) {
            violations.fetch_add(1000);
            return;
          }
          if (answer.value().reachable) {
            seen_yes[p] = true;
          } else if (seen_yes[p]) {
            violations.fetch_add(1);  // YES regressed to NO: stale epoch
          }
        }
      }
    });
  }

  for (int i = 1; i < kCores; ++i) {
    ASSERT_TRUE(server.value()->SwapCore(cores[i], i).ok());
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  stop.store(true);
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(violations.load(), 0);

  // Post-swap queries must all reflect the final core: its chain reaches
  // every probe target.
  for (const auto& [u, v] : probes) {
    auto answer = server.value()->Query(u, v);
    ASSERT_TRUE(answer.ok());
    EXPECT_TRUE(answer.value().reachable) << u << " -> " << v;
  }
  const ReachServerStats stats = server.value()->Snapshot();
  EXPECT_EQ(stats.core_swaps, kCores - 1);
  EXPECT_EQ(stats.published_epoch, kCores - 1);
}

// The single-owner dynamic stack with the rebuilder thread racing it:
// the owner mutates and queries while the rebuilder publishes snapshots
// as fast as it can. Every answer is diffed against an in-memory mirror
// of the live graph — publication/adoption must never surface a stale or
// torn snapshot.
TEST(RebuilderRaceTest, BackgroundPublishNeverServesStaleAnswers) {
  constexpr NodeId kNodes = 64;
  auto log = MutationLog::Open({{0, 1}}, kNodes);
  ASSERT_TRUE(log.ok());
  auto service = DynamicReachService::Create(log.value().get());
  ASSERT_TRUE(service.ok());
  DynamicReachService* serving = service.value().get();

  IndexRebuilderOptions rebuild_options;
  rebuild_options.mutations_per_rebuild = 1;  // publish at every chance
  rebuild_options.poll_interval = std::chrono::milliseconds(1);
  IndexRebuilder rebuilder(
      log.value().get(),
      [serving](std::shared_ptr<const ReachCore> core,
                MutationLog::Epoch epoch, double seconds) {
        serving->PublishSnapshot(std::move(core), epoch, seconds);
      },
      rebuild_options);
  rebuilder.Start();

  // Mirror of the live graph for reference BFS answers.
  std::vector<std::unordered_set<NodeId>> adjacency(kNodes);
  adjacency[0].insert(1);
  std::vector<Arc> live = {{0, 1}};
  const auto reaches = [&](NodeId u, NodeId v) {
    if (u == v) return true;
    std::vector<bool> visited(kNodes, false);
    std::vector<NodeId> frontier = {u};
    visited[static_cast<size_t>(u)] = true;
    while (!frontier.empty()) {
      const NodeId x = frontier.back();
      frontier.pop_back();
      for (const NodeId y : adjacency[static_cast<size_t>(x)]) {
        if (y == v) return true;
        if (!visited[static_cast<size_t>(y)]) {
          visited[static_cast<size_t>(y)] = true;
          frontier.push_back(y);
        }
      }
    }
    return false;
  };

  Rng rng(4242);
  int mismatches = 0;
  for (int op = 0; op < 3000; ++op) {
    const double roll = rng.Uniform(0, 99) / 100.0;
    if (roll < 0.25) {
      const NodeId u = static_cast<NodeId>(rng.Uniform(0, kNodes - 1));
      const NodeId v = static_cast<NodeId>(rng.Uniform(0, kNodes - 1));
      if (u != v && !adjacency[static_cast<size_t>(u)].contains(v)) {
        ASSERT_TRUE(serving->InsertArc(u, v).ok());
        adjacency[static_cast<size_t>(u)].insert(v);
        live.push_back(Arc{u, v});
      }
    } else if (roll < 0.40 && !live.empty()) {
      const size_t pick = static_cast<size_t>(
          rng.Uniform(0, static_cast<int64_t>(live.size()) - 1));
      const Arc victim = live[pick];
      ASSERT_TRUE(serving->DeleteArc(victim.src, victim.dst).ok());
      adjacency[static_cast<size_t>(victim.src)].erase(victim.dst);
      live[pick] = live.back();
      live.pop_back();
    } else {
      const NodeId u = static_cast<NodeId>(rng.Uniform(0, kNodes - 1));
      const NodeId v = static_cast<NodeId>(rng.Uniform(0, kNodes - 1));
      auto answer = serving->Query(u, v);
      ASSERT_TRUE(answer.ok());
      if (answer.value().reachable != reaches(u, v)) ++mismatches;
    }
  }
  // The incremental tier makes the trace finish in a few milliseconds,
  // so the 1 ms rebuild poll may never have fired yet; wait (bounded)
  // for one publication so the liveness assertions below are not a race
  // against thread start-up. A publication is guaranteed eventually:
  // the log is thousands of epochs past the last build.
  for (int spin = 0; spin < 5000 && rebuilder.rebuilds_published() == 0;
       ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  rebuilder.Stop();
  // The final publication may have landed after the last query; drain
  // the slot explicitly so the adoption counter reflects it.
  serving->AdoptPublishedSnapshot();
  EXPECT_EQ(mismatches, 0);
  EXPECT_GT(rebuilder.rebuilds_published(), 0);
  EXPECT_GT(serving->stats().snapshots_adopted, 0);
  EXPECT_TRUE(log.value()->buffers()->AuditNoPins().ok());
}

}  // namespace
}  // namespace tcdb
