// Differential tests of the online reachability subsystem: ReachService
// answers are cross-checked against ground truth from the in-memory oracle
// closure, a TcSession SRCH run, and ComputeReduction closure sizes, over
// the paper's F x l generator grid — including the batched and warm-cache
// serving paths and every rung of the fallback ladder.

#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "core/session.h"
#include "graph/algorithms.h"
#include "graph/analyzer.h"
#include "graph/generator.h"
#include "reach/reach_service.h"
#include "util/random.h"

namespace tcdb {
namespace {

struct Family {
  int32_t avg_out_degree;  // F
  int32_t locality;        // l
};

const std::vector<Family>& Families() {
  static const std::vector<Family>& families = *new std::vector<Family>{
      {2, 20},  {2, 200},  {2, 2000},  {5, 20},  {5, 200},  {5, 2000},
      {20, 20}, {20, 200}, {20, 2000}, {50, 20}, {50, 200}, {50, 2000},
  };
  return families;
}

// Query mix for one graph: random pairs plus arc endpoints (guaranteed
// positives that stress the positive rules).
std::vector<std::pair<NodeId, NodeId>> MakeQueries(const ArcList& arcs,
                                                   NodeId num_nodes,
                                                   uint64_t seed) {
  std::vector<std::pair<NodeId, NodeId>> queries;
  Rng rng(seed);
  for (int i = 0; i < 150; ++i) {
    queries.emplace_back(
        static_cast<NodeId>(rng.Uniform(0, num_nodes - 1)),
        static_cast<NodeId>(rng.Uniform(0, num_nodes - 1)));
  }
  for (size_t i = 0; i < arcs.size() && i < 100; ++i) {
    const size_t pick = static_cast<size_t>(
        rng.Uniform(0, static_cast<int64_t>(arcs.size()) - 1));
    queries.emplace_back(arcs[pick].src, arcs[pick].dst);
  }
  return queries;
}

// Oracle answer: reflexive reachability over the input digraph (cycles
// included — ReferenceClosure's per-source BFS handles them).
bool OracleReaches(const std::vector<std::vector<NodeId>>& closure, NodeId u,
                   NodeId v) {
  if (u == v) return true;
  return std::binary_search(closure[u].begin(), closure[u].end(), v);
}

TEST(ReachDifferentialTest, AgreesWithOracleAcrossFamilies) {
  constexpr NodeId kNodes = 300;
  constexpr int kSeedsPerFamily = 10;
  for (const Family& family : Families()) {
    ReachStats aggregate;
    for (int seed = 1; seed <= kSeedsPerFamily; ++seed) {
      const GeneratorParams params{kNodes, family.avg_out_degree,
                                   family.locality,
                                   static_cast<uint64_t>(seed)};
      const ArcList arcs = GenerateDag(params);
      const Digraph graph(kNodes, arcs);
      const std::vector<std::vector<NodeId>> closure =
          ReferenceClosure(graph);

      auto service = ReachService::Build(arcs, kNodes);
      ASSERT_TRUE(service.ok()) << service.status().ToString();
      const auto queries = MakeQueries(arcs, kNodes, 100 + seed);
      for (const auto& [u, v] : queries) {
        auto answer = service.value()->Query(u, v);
        ASSERT_TRUE(answer.ok());
        EXPECT_EQ(answer.value().reachable, OracleReaches(closure, u, v))
            << "F=" << family.avg_out_degree << " l=" << family.locality
            << " seed=" << seed << " (" << u << ", " << v << ") via "
            << ReachStageName(answer.value().stage);
      }
      const ReachStats& stats = service.value()->stats();
      for (int s = 0; s < kNumReachStages; ++s) {
        aggregate.decided[s] += stats.decided[s];
      }
      aggregate.queries += stats.queries;
    }
    // Acceptance: the O(1) labels decide > 80% of queries per family
    // (fallbacks are the pruned BFS and the SRCH session).
    EXPECT_GT(aggregate.DecidedWithoutFallback(),
              (aggregate.queries * 8) / 10)
        << "F=" << family.avg_out_degree << " l=" << family.locality
        << ": " << aggregate.DecidedWithoutFallback() << " of "
        << aggregate.queries << " decided without fallback";
  }
}

TEST(ReachDifferentialTest, BatchMatchesOracleAndWarmCacheRepeats) {
  constexpr NodeId kNodes = 300;
  for (const Family& family : Families()) {
    const GeneratorParams params{kNodes, family.avg_out_degree,
                                 family.locality, 77};
    const ArcList arcs = GenerateDag(params);
    const Digraph graph(kNodes, arcs);
    const std::vector<std::vector<NodeId>> closure = ReferenceClosure(graph);

    auto service = ReachService::Build(arcs, kNodes);
    ASSERT_TRUE(service.ok());
    const auto queries = MakeQueries(arcs, kNodes, 9);
    auto batch = service.value()->QueryBatch(queries);
    ASSERT_TRUE(batch.ok());
    ASSERT_EQ(batch.value().size(), queries.size());
    for (size_t i = 0; i < queries.size(); ++i) {
      EXPECT_EQ(batch.value()[i].reachable,
                OracleReaches(closure, queries[i].first, queries[i].second))
          << "batch query " << i;
    }
    EXPECT_EQ(service.value()->stats().batches, 1);
    const int64_t cache_hits_before =
        service.value()->stats().Decided(ReachStage::kCache);

    // Second round: answers are unchanged, and the cache serves exactly
    // the fallback-decided queries — the cache policy deliberately skips
    // O(1)-decided answers (they re-derive in nanoseconds and would only
    // evict the expensive entries), so a round-1 label answer must come
    // from the same label stage again.
    auto warm = service.value()->QueryBatch(queries);
    ASSERT_TRUE(warm.ok());
    int64_t cache_hits = 0;
    for (size_t i = 0; i < queries.size(); ++i) {
      EXPECT_EQ(warm.value()[i].reachable, batch.value()[i].reachable);
      const ReachStage first = batch.value()[i].stage;
      const bool was_fallback = first == ReachStage::kPrunedBfs ||
                                first == ReachStage::kSessionFallback;
      EXPECT_EQ(warm.value()[i].stage,
                was_fallback ? ReachStage::kCache : first)
          << "warm query " << i;
      if (warm.value()[i].stage == ReachStage::kCache) ++cache_hits;
    }
    EXPECT_EQ(service.value()->stats().Decided(ReachStage::kCache),
              cache_hits_before + cache_hits);
    // Per-rule attribution covers every query: the rule counters must sum
    // to the stage counters' total.
    int64_t attributed = 0;
    for (int r = 0; r < kNumReachRules; ++r) {
      attributed += service.value()->stats().rule_decided[r];
    }
    EXPECT_EQ(attributed, service.value()->stats().queries);
  }
}

TEST(ReachDifferentialTest, AgreesWithSrchSessionGroundTruth) {
  const GeneratorParams params{400, 5, 120, 31};
  const ArcList arcs = GenerateDag(params);

  TcSession::SessionOptions session_options;
  session_options.exec.capture_answer = true;
  session_options.keep_cache_warm = true;
  auto session = TcSession::Open(arcs, params.num_nodes, session_options);
  ASSERT_TRUE(session.ok());

  auto service = ReachService::Build(arcs, params.num_nodes);
  ASSERT_TRUE(service.ok());

  for (const NodeId source : SampleSourceNodes(params.num_nodes, 6, 12)) {
    auto run = session.value()->Query(Algorithm::kSrch,
                                      QuerySpec::Partial({source}));
    ASSERT_TRUE(run.ok());
    std::vector<NodeId> successors;
    for (const auto& [node, succ] : run.value().answer) {
      if (node == source) successors = succ;
    }
    for (NodeId v = 0; v < params.num_nodes; ++v) {
      if (v == source) continue;
      const bool srch_says =
          std::binary_search(successors.begin(), successors.end(), v);
      auto answer = service.value()->Query(source, v);
      ASSERT_TRUE(answer.ok());
      EXPECT_EQ(answer.value().reachable, srch_says)
          << "source " << source << " dst " << v;
    }
  }
}

TEST(ReachDifferentialTest, ExhaustivePairsMatchReductionClosureSize) {
  const GeneratorParams params{120, 5, 40, 3};
  const ArcList arcs = GenerateDag(params);
  const Digraph graph(params.num_nodes, arcs);
  auto reduction = ComputeReduction(graph);
  ASSERT_TRUE(reduction.ok());

  auto service = ReachService::Build(arcs, params.num_nodes);
  ASSERT_TRUE(service.ok());
  int64_t positive_pairs = 0;
  for (NodeId u = 0; u < params.num_nodes; ++u) {
    for (NodeId v = 0; v < params.num_nodes; ++v) {
      if (u == v) continue;
      auto answer = service.value()->Query(u, v);
      ASSERT_TRUE(answer.ok());
      if (answer.value().reachable) ++positive_pairs;
    }
  }
  EXPECT_EQ(positive_pairs, reduction.value().closure_size);
}

TEST(ReachDifferentialTest, CyclicInputsServeOnTheCondensation) {
  const GeneratorParams params{200, 4, 50, 8};
  const ArcList arcs = GenerateCyclicDigraph(params, 15);
  const Digraph graph(params.num_nodes, arcs);
  const std::vector<std::vector<NodeId>> closure = ReferenceClosure(graph);

  auto service = ReachService::Build(arcs, params.num_nodes);
  ASSERT_TRUE(service.ok());
  EXPECT_TRUE(service.value()->condensed());

  Rng rng(4);
  for (int i = 0; i < 400; ++i) {
    const NodeId u = static_cast<NodeId>(rng.Uniform(0, params.num_nodes - 1));
    const NodeId v = static_cast<NodeId>(rng.Uniform(0, params.num_nodes - 1));
    auto answer = service.value()->Query(u, v);
    ASSERT_TRUE(answer.ok());
    EXPECT_EQ(answer.value().reachable, OracleReaches(closure, u, v))
        << "(" << u << ", " << v << ")";
  }
  // Reflexivity holds even off-cycle.
  auto self = service.value()->Query(7, 7);
  ASSERT_TRUE(self.ok());
  EXPECT_TRUE(self.value().reachable);
  EXPECT_EQ(self.value().stage, ReachStage::kTrivial);
}

// Every rung configuration produces the same (correct) answers; the
// session rung actually fires when the cheaper rungs are disabled.
TEST(ReachFallbackLadderTest, AllConfigurationsAgreeWithOracle) {
  const GeneratorParams params{250, 5, 100, 19};
  const ArcList arcs = GenerateDag(params);
  const Digraph graph(params.num_nodes, arcs);
  const std::vector<std::vector<NodeId>> closure = ReferenceClosure(graph);

  ReachServiceOptions srch_only;  // no BFS, no supportive labels, no cache
  srch_only.bfs_budget = 0;
  srch_only.index.num_supportive = 0;
  srch_only.cache_capacity = 0;

  ReachServiceOptions bfs_only;  // no session: unbounded BFS finishes
  bfs_only.session_fallback = false;
  bfs_only.bfs_budget = 4;  // force the budgeted pass to give up sometimes
  bfs_only.index.num_supportive = 0;

  ReachServiceOptions defaults;

  for (const ReachServiceOptions& options :
       {srch_only, bfs_only, defaults}) {
    auto service = ReachService::Build(arcs, params.num_nodes, options);
    ASSERT_TRUE(service.ok());
    const auto queries = MakeQueries(arcs, params.num_nodes, 5);
    for (const auto& [u, v] : queries) {
      auto answer = service.value()->Query(u, v);
      ASSERT_TRUE(answer.ok());
      EXPECT_EQ(answer.value().reachable, OracleReaches(closure, u, v));
    }
  }

  auto srch_service =
      ReachService::Build(arcs, params.num_nodes, srch_only);
  ASSERT_TRUE(srch_service.ok());
  // The diamond residue: with supportive labels off, some pair needs the
  // SRCH rung.
  const auto queries = MakeQueries(arcs, params.num_nodes, 5);
  auto batch = srch_service.value()->QueryBatch(queries);
  ASSERT_TRUE(batch.ok());
  EXPECT_GT(srch_service.value()
                ->stats()
                .Decided(ReachStage::kSessionFallback),
            0);
  EXPECT_GT(srch_service.value()->stats().session_queries, 0);
}

// Regression: cache_insertions used to count every Insert() call, even
// when the cache was disabled (capacity 0) or the call merely refreshed an
// existing entry — the counter could exceed the cache's lifetime content.
TEST(ReachServiceTest, CacheInsertionsCountOnlyStoredEntries) {
  const GeneratorParams params{250, 5, 100, 19};
  const ArcList arcs = GenerateDag(params);

  // Caching disabled: nothing can be stored, so nothing may be counted.
  ReachServiceOptions no_cache;
  no_cache.cache_capacity = 0;
  auto disabled = ReachService::Build(arcs, params.num_nodes, no_cache);
  ASSERT_TRUE(disabled.ok());
  const auto queries = MakeQueries(arcs, params.num_nodes, 5);
  for (const auto& [u, v] : queries) {
    ASSERT_TRUE(disabled.value()->Query(u, v).ok());
  }
  ASSERT_TRUE(disabled.value()->QueryBatch(queries).ok());
  EXPECT_GT(disabled.value()->stats().queries, 0);
  EXPECT_EQ(disabled.value()->stats().cache_insertions, 0);

  // A duplicated fallback pair in one batch resolves as one group; the
  // second Insert refreshes the first and must not be counted.
  ReachServiceOptions srch_only;
  srch_only.bfs_budget = 0;
  srch_only.index.num_supportive = 0;
  auto probe = ReachService::Build(arcs, params.num_nodes, srch_only);
  ASSERT_TRUE(probe.ok());
  std::pair<NodeId, NodeId> fallback_pair{-1, -1};
  for (const auto& [u, v] : queries) {
    auto answer = probe.value()->Query(u, v);
    ASSERT_TRUE(answer.ok());
    if (answer.value().stage == ReachStage::kSessionFallback) {
      fallback_pair = {u, v};
      break;
    }
  }
  ASSERT_GE(fallback_pair.first, 0) << "no query needed the session rung";

  auto service = ReachService::Build(arcs, params.num_nodes, srch_only);
  ASSERT_TRUE(service.ok());
  const std::vector<std::pair<NodeId, NodeId>> twice = {fallback_pair,
                                                        fallback_pair};
  auto batch = service.value()->QueryBatch(twice);
  ASSERT_TRUE(batch.ok());
  EXPECT_EQ(service.value()->stats().cache_insertions, 1);
}

// Regression: a SRCH answer that does not cover the queried source used to
// be served as an empty successor list — i.e. "reaches nothing" — instead
// of surfacing the internal inconsistency.
TEST(ReachServiceTest, MissingSessionAnswerIsAnInternalError) {
  RunResult run;
  run.answer.emplace_back(3, std::vector<NodeId>{4, 5});

  auto found = ExtractSessionSuccessors(run, 3);
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(found.value(), (std::vector<NodeId>{4, 5}));

  auto missing = ExtractSessionSuccessors(std::move(run), 7);
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kInternal);
}

// Regression: QueryBatch timed each pass-1 classification but threw the
// timer away for queries that fell through to the fallback pass, so their
// recorded latency missed the label work. With a tick clock (+1s per
// read), a single-fallback batch reads the clock twice in pass 1 and
// twice in pass 2: the recorded total must be 2.0s, not the 1.0s of the
// fallback interval alone.
TEST(ReachServiceTest, BatchLatencyIncludesPassOneClassification) {
  const GeneratorParams params{250, 5, 100, 19};
  const ArcList arcs = GenerateDag(params);

  ReachServiceOptions srch_only;
  srch_only.bfs_budget = 0;
  srch_only.index.num_supportive = 0;
  srch_only.cache_capacity = 0;

  auto probe = ReachService::Build(arcs, params.num_nodes, srch_only);
  ASSERT_TRUE(probe.ok());
  std::pair<NodeId, NodeId> fallback_pair{-1, -1};
  for (const auto& [u, v] : MakeQueries(arcs, params.num_nodes, 5)) {
    auto answer = probe.value()->Query(u, v);
    ASSERT_TRUE(answer.ok());
    if (answer.value().stage == ReachStage::kSessionFallback) {
      fallback_pair = {u, v};
      break;
    }
  }
  ASSERT_GE(fallback_pair.first, 0) << "no query needed the session rung";

  auto service = ReachService::Build(arcs, params.num_nodes, srch_only);
  ASSERT_TRUE(service.ok());
  double ticks = 0.0;
  service.value()->SetClockForTesting([&ticks] { return ticks += 1.0; });

  const std::vector<std::pair<NodeId, NodeId>> one = {fallback_pair};
  auto batch = service.value()->QueryBatch(one);
  ASSERT_TRUE(batch.ok());
  EXPECT_EQ(batch.value()[0].stage, ReachStage::kSessionFallback);
  EXPECT_DOUBLE_EQ(service.value()->stats().TotalSeconds(), 2.0);
}

TEST(ReachServiceTest, ValidatesInputs) {
  const ArcList arcs = {{0, 1}, {1, 2}};
  auto service = ReachService::Build(arcs, 3);
  ASSERT_TRUE(service.ok());
  EXPECT_FALSE(service.value()->Query(-1, 0).ok());
  EXPECT_FALSE(service.value()->Query(0, 3).ok());
  const std::vector<std::pair<NodeId, NodeId>> bad = {{0, 1}, {5, 0}};
  EXPECT_FALSE(service.value()->QueryBatch(bad).ok());

  EXPECT_FALSE(ReachService::Build({{0, 9}}, 3).ok());
  EXPECT_FALSE(ReachService::Build({}, -1).ok());
}

TEST(ReachIndexTest, LabelInvariantsOnASmallDag) {
  // 0 -> 1 -> 3, 0 -> 2 -> 3 (diamond), 4 isolated.
  const ArcList arcs = {{0, 1}, {0, 2}, {1, 3}, {2, 3}};
  auto index = ReachIndex::Build(Digraph(5, arcs));
  ASSERT_TRUE(index.ok());
  const ReachIndex& idx = index.value();
  EXPECT_EQ(idx.num_nodes(), 5);

  ReachStage stage;
  EXPECT_EQ(idx.TryDecide(3, 0, &stage), ReachIndex::Verdict::kNo);
  EXPECT_EQ(stage, ReachStage::kTopoNegative);
  EXPECT_EQ(idx.TryDecide(0, 3, &stage), ReachIndex::Verdict::kYes);
  EXPECT_EQ(idx.TryDecide(0, 0, &stage), ReachIndex::Verdict::kYes);
  EXPECT_EQ(stage, ReachStage::kTrivial);
  // The isolated node reaches nothing and is reached by nothing.
  EXPECT_EQ(idx.TryDecide(4, 3, nullptr), ReachIndex::Verdict::kNo);
  EXPECT_EQ(idx.TryDecide(0, 4, nullptr), ReachIndex::Verdict::kNo);

  // PrunedBfs is definitive given budget, and kUnknown without one.
  ReachIndex::SearchScratch scratch;
  EXPECT_EQ(idx.PrunedBfs(Digraph(5, arcs), 2, 3, 100, &scratch),
            ReachIndex::Verdict::kYes);
  EXPECT_EQ(idx.PrunedBfs(Digraph(5, arcs), 1, 2, 100, &scratch),
            ReachIndex::Verdict::kNo);
  EXPECT_EQ(idx.PrunedBfs(Digraph(5, arcs), 0, 3, 0, &scratch),
            ReachIndex::Verdict::kUnknown);

  // Chains partition the nodes.
  EXPECT_GT(idx.num_chains(), 0);
  for (NodeId v = 0; v < 5; ++v) {
    EXPECT_GE(idx.chain_id(v), 0);
    EXPECT_LT(idx.chain_id(v), idx.num_chains());
  }
  EXPECT_FALSE(ReachIndex::Build(Digraph(2, {{0, 1}, {1, 0}})).ok());
}

}  // namespace
}  // namespace tcdb
