// Unit tests for the simulated disk (Pager) and I/O statistics.

#include <gtest/gtest.h>

#include "storage/io_stats.h"
#include "storage/pager.h"

namespace tcdb {
namespace {

TEST(PageTest, TypedAccess) {
  Page page;
  page.Zero();
  *page.As<uint64_t>(8) = 0xdeadbeef;
  EXPECT_EQ(*page.As<uint64_t>(8), 0xdeadbeefu);
  EXPECT_EQ(*page.As<uint64_t>(0), 0u);
}

TEST(PagerTest, CreateFilesAndAllocate) {
  Pager pager;
  const FileId a = pager.CreateFile("a");
  const FileId b = pager.CreateFile("b");
  EXPECT_NE(a, b);
  EXPECT_EQ(pager.FileName(a), "a");
  EXPECT_EQ(pager.FileSize(a), 0u);
  EXPECT_EQ(pager.AllocatePage(a), 0u);
  EXPECT_EQ(pager.AllocatePage(a), 1u);
  EXPECT_EQ(pager.FileSize(a), 2u);
  EXPECT_EQ(pager.FileSize(b), 0u);
}

TEST(PagerTest, ReadWriteRoundTrip) {
  Pager pager;
  const FileId file = pager.CreateFile("data");
  const PageNumber page_no = pager.AllocatePage(file);
  Page out;
  out.Zero();
  *out.As<int32_t>(100) = -77;
  pager.WritePage(file, page_no, out);
  Page in;
  pager.ReadPage(file, page_no, &in);
  EXPECT_EQ(*in.As<int32_t>(100), -77);
}

TEST(PagerTest, FreshPagesAreZeroed) {
  Pager pager;
  const FileId file = pager.CreateFile("data");
  pager.AllocatePage(file);
  Page in;
  pager.ReadPage(file, 0, &in);
  for (size_t i = 0; i < kPageSize; ++i) EXPECT_EQ(in.data[i], 0);
}

TEST(PagerTest, CountsIoByPhaseAndFile) {
  Pager pager;
  const FileId a = pager.CreateFile("a");
  const FileId b = pager.CreateFile("b");
  pager.AllocatePage(a);
  pager.AllocatePage(b);
  Page page;
  page.Zero();

  pager.SetPhase(Phase::kRestructuring);
  pager.WritePage(a, 0, page);
  pager.ReadPage(a, 0, &page);
  pager.SetPhase(Phase::kComputation);
  pager.ReadPage(b, 0, &page);
  pager.ReadPage(b, 0, &page);

  const IoStats& stats = pager.stats();
  EXPECT_EQ(stats.ForPhase(Phase::kRestructuring).reads, 1u);
  EXPECT_EQ(stats.ForPhase(Phase::kRestructuring).writes, 1u);
  EXPECT_EQ(stats.ForPhase(Phase::kComputation).reads, 2u);
  EXPECT_EQ(stats.ForPhase(Phase::kComputation).writes, 0u);
  EXPECT_EQ(stats.ForFile(a).total(), 2u);
  EXPECT_EQ(stats.ForFile(b).total(), 2u);
  EXPECT_EQ(stats.Total().reads, 3u);
  EXPECT_EQ(stats.Total().writes, 1u);
}

TEST(PagerTest, AllocationIsNotIo) {
  Pager pager;
  const FileId file = pager.CreateFile("data");
  for (int i = 0; i < 10; ++i) pager.AllocatePage(file);
  EXPECT_EQ(pager.stats().Total().total(), 0u);
}

TEST(PagerTest, TruncateEmptiesFile) {
  Pager pager;
  const FileId file = pager.CreateFile("data");
  pager.AllocatePage(file);
  pager.AllocatePage(file);
  pager.TruncateFile(file);
  EXPECT_EQ(pager.FileSize(file), 0u);
  EXPECT_EQ(pager.AllocatePage(file), 0u);
}

TEST(PagerTest, ResetStats) {
  Pager pager;
  const FileId file = pager.CreateFile("data");
  pager.AllocatePage(file);
  Page page;
  pager.ReadPage(file, 0, &page);
  pager.ResetStats();
  EXPECT_EQ(pager.stats().Total().total(), 0u);
}

TEST(IoStatsTest, PhaseNames) {
  EXPECT_STREQ(PhaseName(Phase::kSetup), "setup");
  EXPECT_STREQ(PhaseName(Phase::kRestructuring), "restructuring");
  EXPECT_STREQ(PhaseName(Phase::kComputation), "computation");
}

}  // namespace
}  // namespace tcdb
