// Kernel differential suite for the bit-parallel matrix backends: the
// scalar per-bit loops, the portable uint64 word loops, and (when the
// build and CPU provide it) AVX2 must produce bit-identical closures on
// every graph shape, and every backend must preserve the tail-masking
// invariant (no bit at column >= n survives any operation). Also pins the
// ISSUE acceptance criterion: the uint64 kernels beat the scalar per-bit
// baseline by >= 4x on a dense closure.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "core/bit_matrix.h"
#include "graph/algorithms.h"
#include "graph/generator.h"
#include "util/random.h"
#include "util/timer.h"

namespace tcdb {
namespace {

// The backends available in this build/CPU; kScalar first so the others
// diff against it.
std::vector<BitKernelBackend> AvailableBackends() {
  std::vector<BitKernelBackend> backends = {BitKernelBackend::kScalar,
                                            BitKernelBackend::kUint64};
  if (Avx2Supported()) backends.push_back(BitKernelBackend::kAvx2);
  return backends;
}

enum class Variant { kWarshall, kWarren, kWarrenBlocked };

const char* VariantName(Variant variant) {
  switch (variant) {
    case Variant::kWarshall: return "Warshall";
    case Variant::kWarren: return "Warren";
    case Variant::kWarrenBlocked: return "WarrenBlocked";
  }
  return "?";
}

void RunClosure(BitMatrix* m, Variant variant, BitKernelBackend backend) {
  switch (variant) {
    case Variant::kWarshall: m->Warshall(backend); break;
    case Variant::kWarren: m->Warren(backend); break;
    case Variant::kWarrenBlocked: m->WarrenBlocked(backend, 64); break;
  }
}

// The graph shapes of the differential sweep. Sizes are deliberately not
// multiples of 64 so the tail word is always live.
struct Shape {
  const char* name;
  NodeId n;
  ArcList arcs;
};

std::vector<Shape> DifferentialShapes() {
  std::vector<Shape> shapes;
  // Dense: high fan-out, global locality.
  shapes.push_back({"dense", 150, GenerateDag({150, 20, 150, 11})});
  // Deep and narrow: long chains, fan-out 1.
  shapes.push_back({"deep_narrow", 197, GenerateDag({197, 1, 5, 12})});
  // Wide and shallow: every node points far forward, few levels.
  shapes.push_back({"wide_shallow", 130, GenerateDag({130, 30, 130, 13})});
  // Cyclic, with explicit self-loops: the matrix algorithms do not require
  // acyclicity, and reflexive bits exercise the diagonal path.
  ArcList cyclic = GenerateCyclicDigraph({150, 4, 40, 14}, 25);
  cyclic.push_back({7, 7});
  cyclic.push_back({149, 149});
  std::sort(cyclic.begin(), cyclic.end());
  cyclic.erase(std::unique(cyclic.begin(), cyclic.end()), cyclic.end());
  shapes.push_back({"cyclic", 150, std::move(cyclic)});
  return shapes;
}

TEST(BitMatrixKernelTest, AllBackendsProduceBitIdenticalClosures) {
  for (const Shape& shape : DifferentialShapes()) {
    const BitMatrix adjacency =
        BitMatrix::FromDigraph(Digraph(shape.n, shape.arcs));
    ASSERT_TRUE(adjacency.TailsClear());
    for (const Variant variant :
         {Variant::kWarshall, Variant::kWarren, Variant::kWarrenBlocked}) {
      BitMatrix reference = adjacency;
      RunClosure(&reference, variant, BitKernelBackend::kScalar);
      EXPECT_TRUE(reference.TailsClear())
          << shape.name << "/" << VariantName(variant) << "/scalar";
      for (const BitKernelBackend backend : AvailableBackends()) {
        if (backend == BitKernelBackend::kScalar) continue;
        SCOPED_TRACE(std::string(shape.name) + "/" + VariantName(variant) +
                     "/" + BitKernelBackendName(backend));
        BitMatrix m = adjacency;
        RunClosure(&m, variant, backend);
        EXPECT_TRUE(m.TailsClear());
        EXPECT_TRUE(m == reference);
      }
    }
  }
}

TEST(BitMatrixKernelTest, ClosureMatchesGraphReference) {
  for (const Shape& shape : DifferentialShapes()) {
    SCOPED_TRACE(shape.name);
    const Digraph graph(shape.n, shape.arcs);
    const auto expected = ReferenceClosure(graph);
    BitMatrix m = BitMatrix::FromDigraph(graph);
    m.Warren(BitKernelBackend::kAuto);
    for (NodeId v = 0; v < shape.n; ++v) {
      std::vector<NodeId> row;
      for (NodeId w = 0; w < shape.n; ++w) {
        if (m.Test(v, w)) row.push_back(w);
      }
      EXPECT_EQ(row, expected[v]) << "node " << v;
    }
  }
}

TEST(BitMatrixKernelTest, VariantsAgreeWithEachOther) {
  const ArcList arcs = GenerateDag({321, 6, 80, 21});
  const BitMatrix adjacency = BitMatrix::FromDigraph(Digraph(321, arcs));
  BitMatrix warshall = adjacency, warren = adjacency, blocked = adjacency;
  warshall.Warshall(BitKernelBackend::kAuto);
  warren.Warren(BitKernelBackend::kAuto);
  blocked.WarrenBlocked(BitKernelBackend::kAuto, 50);
  EXPECT_TRUE(warshall == warren);
  EXPECT_TRUE(warren == blocked);
}

TEST(BitMatrixKernelTest, TailMaskMatchesBitDefinition) {
  for (const NodeId n : {1, 63, 64, 65, 67, 127, 128, 129, 2000}) {
    const uint64_t mask = BitRowTailMask(n);
    for (unsigned b = 0; b < 64; ++b) {
      const size_t column = ((BitRowWords(n) - 1) << 6) + b;
      EXPECT_EQ((mask >> b) & 1,
                column < static_cast<size_t>(n) ? 1u : 0u)
          << "n=" << n << " bit " << b;
    }
  }
}

TEST(BitMatrixKernelTest, UnionChangedAgreesAcrossBackends) {
  // union_words_changed drives Warshall-style convergence checks; its
  // boolean must agree bit-for-bit with the scalar definition, including
  // the no-change case.
  const size_t words = 7;
  Rng rng(99);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<uint64_t> dst(words), src(words);
    for (size_t w = 0; w < words; ++w) {
      dst[w] = rng.Next();
      // Occasionally make src a subset of dst so "no change" happens.
      src[w] = trial % 5 == 0 ? (dst[w] & rng.Next()) : rng.Next();
    }
    std::vector<uint64_t> scalar_dst = dst;
    const bool scalar_changed = ScalarKernelOps()->union_words_changed(
        scalar_dst.data(), src.data(), words);
    for (const BitKernelBackend backend : AvailableBackends()) {
      if (backend == BitKernelBackend::kScalar) continue;
      const BitKernelOps* ops = ResolveBitKernels(backend);
      std::vector<uint64_t> out = dst;
      const bool changed =
          ops->union_words_changed(out.data(), src.data(), words);
      EXPECT_EQ(changed, scalar_changed) << ops->name << " trial " << trial;
      EXPECT_EQ(out, scalar_dst) << ops->name << " trial " << trial;
    }
  }
}

TEST(BitMatrixKernelTest, PopcountAgreesAcrossBackends) {
  Rng rng(7);
  for (const size_t words : {1u, 2u, 3u, 5u, 32u}) {
    std::vector<uint64_t> row(words);
    for (auto& w : row) w = rng.Next();
    const int64_t expected =
        ScalarKernelOps()->popcount_words(row.data(), words);
    for (const BitKernelBackend backend : AvailableBackends()) {
      const BitKernelOps* ops = backend == BitKernelBackend::kScalar
                                    ? ScalarKernelOps()
                                    : ResolveBitKernels(backend);
      EXPECT_EQ(ops->popcount_words(row.data(), words), expected)
          << ops->name << " words=" << words;
    }
  }
}

TEST(BitMatrixKernelTest, ResolveFallsBackWhenAvx2Unavailable) {
  EXPECT_STREQ(ResolveBitKernels(BitKernelBackend::kScalar)->name, "scalar");
  EXPECT_STREQ(ResolveBitKernels(BitKernelBackend::kUint64)->name, "uint64");
  const BitKernelOps* avx2 = ResolveBitKernels(BitKernelBackend::kAvx2);
  const BitKernelOps* autod = ResolveBitKernels(BitKernelBackend::kAuto);
  if (Avx2Supported()) {
    EXPECT_STREQ(avx2->name, "avx2");
    EXPECT_STREQ(autod->name, "avx2");
  } else {
    EXPECT_STREQ(avx2->name, "uint64");
    EXPECT_STREQ(autod->name, "uint64");
  }
}

// The ISSUE acceptance criterion, scaled to test time: the uint64 word
// kernels must beat the scalar per-bit baseline by >= 4x on a dense
// closure. The real margin is ~50x (see bench_micro's n=2000 sweep);
// asserting 4x at n=512 leaves an order of magnitude of slack for noisy
// CI machines while still catching any accidental de-vectorization.
TEST(BitMatrixKernelTest, Uint64KernelsBeatScalarByFourX) {
  const NodeId n = 512;
  const BitMatrix adjacency =
      BitMatrix::FromDigraph(Digraph(n, GenerateDag({n, 20, n, 31})));

  // One warm-up + best-of-3 on each side to shed scheduler noise.
  auto time_backend = [&](BitKernelBackend backend, int reps) {
    double best = 1e30;
    for (int r = 0; r < reps; ++r) {
      BitMatrix m = adjacency;
      CpuTimer timer;
      m.Warshall(backend);
      best = std::min(best, timer.ElapsedSeconds());
      EXPECT_TRUE(m.TailsClear());
    }
    return best;
  };

  double scalar_s = 0, uint64_s = 0;
  time_backend(BitKernelBackend::kUint64, 1);  // warm caches
  uint64_s = time_backend(BitKernelBackend::kUint64, 3);
  scalar_s = time_backend(BitKernelBackend::kScalar, 3);
  EXPECT_GE(scalar_s, 4.0 * uint64_s)
      << "scalar " << scalar_s << "s vs uint64 " << uint64_s << "s";
}

}  // namespace
}  // namespace tcdb
