// Checkpoint-while-serving (ctest labels: `persist` and `concurrency`;
// check.sh reruns this binary under ThreadSanitizer). A background
// IndexRebuilder keeps publishing fresh cores into the durable service's
// DynamicReachService while the owner thread mutates, queries, and takes
// checkpoints — the checkpoint cut and the concurrent rebuilds must never
// race, and the state recovered afterwards must match the reference.

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "dynamic/index_rebuilder.h"
#include "dynamic/reference_graph.h"
#include "graph/generator.h"
#include "persist/durable_service.h"
#include "persist/fs.h"
#include "util/random.h"

namespace tcdb {
namespace {

TEST(PersistServing, CheckpointsUnderBackgroundRebuilds) {
  GeneratorParams params;
  params.num_nodes = 120;
  params.avg_out_degree = 3;
  params.locality = 30;
  params.seed = 5;
  const NodeId n = params.num_nodes;
  const ArcList base = GenerateCyclicDigraph(params, /*num_back_arcs=*/6);

  MemFs fs;
  DurableOptions options;
  options.dynamic.overlay_probe_budget = 128;  // force frequent escalation
  auto db = DurableDynamicService::Create(&fs, "db", base, n, options);
  ASSERT_TRUE(db.ok());

  ReferenceGraph reference(n);
  for (const Arc& arc : base) {
    if (!reference.HasArc(arc.src, arc.dst)) reference.Insert(arc.src, arc.dst);
  }

  DynamicReachService* service = db.value()->service();
  IndexRebuilderOptions rebuild_options;
  rebuild_options.mutations_per_rebuild = 16;
  rebuild_options.poll_interval = std::chrono::milliseconds(1);
  IndexRebuilder rebuilder(
      db.value()->log(),
      [service](std::shared_ptr<const ReachCore> core,
                MutationLog::Epoch epoch, double seconds) {
        service->PublishSnapshot(std::move(core), epoch, seconds);
      },
      rebuild_options);
  rebuilder.Start();

  Rng rng(17);
  int64_t checkpoints = 0;
  for (int op = 0; op < 600; ++op) {
    const NodeId s = static_cast<NodeId>(rng.Uniform(0, n - 1));
    const NodeId d = static_cast<NodeId>(rng.Uniform(0, n - 1));
    if (s != d && rng.Bernoulli(0.6)) {
      if (reference.HasArc(s, d)) {
        ASSERT_TRUE(db.value()->DeleteArc(s, d).ok());
        reference.Delete(s, d);
      } else {
        ASSERT_TRUE(db.value()->InsertArc(s, d).ok());
        reference.Insert(s, d);
      }
    } else {
      auto answer = db.value()->Query(s, d);
      ASSERT_TRUE(answer.ok());
      ASSERT_EQ(answer.value().reachable, reference.Reaches(s, d))
          << "op " << op << " (" << s << ", " << d << ")";
    }
    if ((op + 1) % 50 == 0) {
      ASSERT_TRUE(db.value()->Checkpoint().ok());
      ++checkpoints;
      // Yield so the rebuilder actually gets to build and publish between
      // checkpoints — otherwise this loop outruns its poll interval.
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  }
  rebuilder.Stop();
  EXPECT_EQ(checkpoints, 12);
  const MutationLog::Epoch final_epoch = db.value()->epoch();
  db.value().reset();

  // What the concurrent run persisted must recover to the exact state.
  RecoveryReport report;
  auto recovered = DurableDynamicService::Recover(&fs, "db", options, &report);
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(report.recovered_epoch, final_epoch);
  EXPECT_EQ(report.replayed_entries,
            report.recovered_epoch - report.checkpoint_epoch);
  for (NodeId v = 0; v < n; ++v) {
    std::vector<NodeId> row;
    ASSERT_TRUE(recovered.value()->log()->ReadSuccessors(v, &row).ok());
    std::sort(row.begin(), row.end());
    ASSERT_EQ(row, reference.SortedSuccessors(v)) << "node " << v;
  }
  for (int i = 0; i < 60; ++i) {
    const NodeId s = static_cast<NodeId>(rng.Uniform(0, n - 1));
    const NodeId d = static_cast<NodeId>(rng.Uniform(0, n - 1));
    auto answer = recovered.value()->Query(s, d);
    ASSERT_TRUE(answer.ok());
    EXPECT_EQ(answer.value().reachable, reference.Reaches(s, d));
  }
}

}  // namespace
}  // namespace tcdb
