// Golden-metrics regression suite: exact page-I/O and tuple counts for
// three catalog families — G5 (F=5, l=200, the paper's center point),
// sparse G2 (F=2, l=200) and dense G11 (F=50, l=200) — across closure
// algorithms plus one partial query each, pinned at the default
// execution parameters (M=20, LRU). Every counter here is deterministic
// by construction (see determinism_test.cc), so any drift — a changed
// replacement decision, a lost marking, an extra restructuring pass — is
// a behavior change that must be explained and re-pinned, not noise.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "bench_support/catalog.h"
#include "core/database.h"
#include "dynamic/mutation_log.h"
#include "graph/generator.h"
#include "persist/file_page_device.h"
#include "persist/fs.h"
#include "util/random.h"

namespace tcdb {
namespace {

struct Golden {
  const char* name;
  Algorithm algorithm;
  bool full_closure;
  int64_t restructure_reads;
  int64_t restructure_writes;
  int64_t compute_reads;
  int64_t compute_writes;
  int64_t tuples_generated;
  int64_t distinct_tuples;
  int64_t selected_tuples;
};

// Values recorded from the seed implementation on G5 instance 0
// (n=2000, F=5, l=200, generator seed per CatalogParams) at M=20/LRU.
const Golden kGoldens[] = {
    {"BTC", Algorithm::kBtc, true,
     39, 41, 16059, 4490, 4945070, 1497673, 1497673},
    {"JKB2", Algorithm::kJkb2, true,
     78, 55, 21895, 23790, 4940471, 1497673, 1497673},
    {"SRCH", Algorithm::kSrch, true,
     37805, 4070, 0, 0, 7227219, 1497673, 1497673},
    {"BTC_PTC_s10", Algorithm::kBtc, false,
     43, 24, 8196, 2419, 2316952, 742122, 4812},
};

// Recorded from the seed implementation on G2 instance 0 (n=2000, F=2,
// l=200) at M=20/LRU — the sparse end of the locality-200 column.
const Golden kGoldensG2[] = {
    {"BTC", Algorithm::kBtc, true,
     16, 34, 4602, 2405, 1214529, 706694, 706694},
    {"JKB2", Algorithm::kJkb2, true,
     32, 42, 6919, 8677, 1304789, 706694, 706694},
    {"BTC_PTC_s10", Algorithm::kBtc, false,
     21, 6, 1183, 776, 232024, 147804, 3106},
};

// Recorded from the seed implementation on G11 instance 0 (n=2000, F=50,
// l=200) at M=20/LRU — the dense end, where restructuring dominates the
// I/O profile.
const Golden kGoldensG11[] = {
    {"BTC", Algorithm::kBtc, true,
     322, 325, 9216, 5403, 4410654, 1950170, 1950170},
    {"JKB2", Algorithm::kJkb2, true,
     644, 333, 16263, 23199, 4302338, 1950170, 1950170},
    {"BTC_PTC_s10", Algorithm::kBtc, false,
     282, 257, 5921, 3690, 2913268, 1268040, 8730},
};

// The dense matrix family on G5 instance 0 at M=20/LRU, recorded with the
// default (kAuto) kernel backend — the backend is irrelevant by
// construction, which MatrixBackendSwapKeepsGoldenCounters pins below.
// distinct_tuples matches the BTC/JKB2/SRCH rows above: all full-closure
// algorithms compute the same closure. The matrix family generates no
// tuples (it flips bits), so tuples_generated is 0 by definition.
const Golden kGoldensMatrix[] = {
    {"WARSHALL", Algorithm::kWarshall, true,
     289, 233, 501930, 231089, 0, 1497673, 1497673},
    {"WARREN", Algorithm::kWarren, true,
     289, 233, 208590, 1630, 0, 1497673, 1497673},
    {"WARREN_BLOCKED", Algorithm::kWarrenBlocked, true,
     289, 233, 202062, 267, 0, 1497673, 1497673},
};

void CheckGoldens(const char* family_name,
                  std::span<const Golden> goldens) {
  const GraphFamily& family = FamilyByName(family_name);
  auto db = MakeCatalogDatabase(family, 0);
  ASSERT_TRUE(db.ok()) << db.status().ToString();

  ExecOptions options;
  options.buffer_pages = 20;

  for (const Golden& golden : goldens) {
    SCOPED_TRACE(std::string(family_name) + "/" + golden.name);
    const QuerySpec query =
        golden.full_closure
            ? QuerySpec::Full()
            : QuerySpec::Partial(CatalogSources(family, 0, 0, 10));
    auto run = db.value()->Execute(golden.algorithm, query, options);
    ASSERT_TRUE(run.ok()) << run.status().ToString();
    const RunMetrics& m = run.value().metrics;
    EXPECT_EQ(m.restructure_reads, golden.restructure_reads);
    EXPECT_EQ(m.restructure_writes, golden.restructure_writes);
    EXPECT_EQ(m.compute_reads, golden.compute_reads);
    EXPECT_EQ(m.compute_writes, golden.compute_writes);
    EXPECT_EQ(m.tuples_generated, golden.tuples_generated);
    EXPECT_EQ(m.distinct_tuples, golden.distinct_tuples);
    EXPECT_EQ(m.selected_tuples, golden.selected_tuples);
  }
}

TEST(GoldenMetricsTest, G5CountersAreExactlyPinned) {
  CheckGoldens("G5", kGoldens);
}

TEST(GoldenMetricsTest, G2CountersAreExactlyPinned) {
  CheckGoldens("G2", kGoldensG2);
}

TEST(GoldenMetricsTest, G11CountersAreExactlyPinned) {
  CheckGoldens("G11", kGoldensG11);
}

TEST(GoldenMetricsTest, G5MatrixCountersAreExactlyPinned) {
  CheckGoldens("G5", kGoldensMatrix);
}

// The kernel backend (uint64 words vs AVX2 vs auto) may change only CPU
// time. Every golden counter — page I/O, unions, tuple counts — is a
// model quantity and must be bit-identical across backends at full
// catalog scale. (The scalar per-bit backend is checked the same way at
// smaller n in baselines_test, where its runtime is affordable.)
TEST(GoldenMetricsTest, MatrixBackendSwapKeepsGoldenCounters) {
  const GraphFamily& family = FamilyByName("G5");
  auto db = MakeCatalogDatabase(family, 0);
  ASSERT_TRUE(db.ok());
  for (const Golden& golden : kGoldensMatrix) {
    ExecOptions options;
    options.buffer_pages = 20;
    options.matrix_backend = BitKernelBackend::kUint64;
    auto reference =
        db.value()->Execute(golden.algorithm, QuerySpec::Full(), options);
    ASSERT_TRUE(reference.ok());
    const RunMetrics& ref = reference.value().metrics;
    for (const BitKernelBackend backend :
         {BitKernelBackend::kAvx2, BitKernelBackend::kAuto}) {
      SCOPED_TRACE(std::string(golden.name) + "/" +
                   BitKernelBackendName(backend));
      options.matrix_backend = backend;
      auto run =
          db.value()->Execute(golden.algorithm, QuerySpec::Full(), options);
      ASSERT_TRUE(run.ok());
      const RunMetrics& m = run.value().metrics;
      EXPECT_EQ(m.restructure_reads, ref.restructure_reads);
      EXPECT_EQ(m.restructure_writes, ref.restructure_writes);
      EXPECT_EQ(m.compute_reads, ref.compute_reads);
      EXPECT_EQ(m.compute_writes, ref.compute_writes);
      EXPECT_EQ(m.list_unions, ref.list_unions);
      EXPECT_EQ(m.tuples_generated, ref.tuples_generated);
      EXPECT_EQ(m.distinct_tuples, ref.distinct_tuples);
      EXPECT_EQ(m.selected_tuples, ref.selected_tuples);
    }
  }
}

// The simulated-model counters the goldens above pin must be a function
// of the access pattern alone, never of where the bytes live: the same
// workload driven over the in-memory page device and over a real
// file-backed one must produce byte-identical model IoStats, with real
// traffic appearing only in the device's own DeviceIoStats (a separate
// type precisely so it can never fold into the model numbers).
TEST(GoldenMetricsTest, ModelIoStatsAreDeviceIndependent) {
  GeneratorParams params;
  params.num_nodes = 2000;
  params.avg_out_degree = 5;
  params.locality = 200;
  params.seed = 9;
  const ArcList base = GenerateDag(params);

  MemFs fs;
  ASSERT_TRUE(fs.MakeDir("pages").ok());
  MutationLogOptions mem_options;
  mem_options.buffer_pages = 4;  // eviction pressure -> real page traffic
  MutationLogOptions file_options = mem_options;
  file_options.make_device = [&fs]() {
    return std::make_unique<FilePageDevice>(&fs, "pages");
  };
  auto mem_log = MutationLog::Open(base, params.num_nodes, mem_options);
  auto file_log = MutationLog::Open(base, params.num_nodes, file_options);
  ASSERT_TRUE(mem_log.ok());
  ASSERT_TRUE(file_log.ok());

  Rng rng(31);
  for (int op = 0; op < 300; ++op) {
    const NodeId s = static_cast<NodeId>(rng.Uniform(0, params.num_nodes - 1));
    const NodeId d = static_cast<NodeId>(rng.Uniform(0, params.num_nodes - 1));
    if (s != d && rng.Bernoulli(0.7)) {
      if (mem_log.value()->HasArc(s, d)) {
        ASSERT_TRUE(mem_log.value()->DeleteArc(s, d).ok());
        ASSERT_TRUE(file_log.value()->DeleteArc(s, d).ok());
      } else {
        ASSERT_TRUE(mem_log.value()->InsertArc(s, d).ok());
        ASSERT_TRUE(file_log.value()->InsertArc(s, d).ok());
      }
    } else {
      std::vector<NodeId> mem_row, file_row;
      ASSERT_TRUE(mem_log.value()->ReadSuccessors(s, &mem_row).ok());
      ASSERT_TRUE(file_log.value()->ReadSuccessors(s, &file_row).ok());
    }
  }

  // Flush both pools so dirty frames reach the devices on both sides.
  mem_log.value()->buffers()->FlushAll();
  file_log.value()->buffers()->FlushAll();

  const IoStats& mem_stats = mem_log.value()->pager()->stats();
  const IoStats& file_stats = file_log.value()->pager()->stats();
  EXPECT_GT(mem_stats.Total().total(), 0u);
  for (const Phase phase :
       {Phase::kSetup, Phase::kRestructuring, Phase::kComputation}) {
    EXPECT_EQ(mem_stats.ForPhase(phase).reads,
              file_stats.ForPhase(phase).reads);
    EXPECT_EQ(mem_stats.ForPhase(phase).writes,
              file_stats.ForPhase(phase).writes);
  }

  const DeviceIoStats& mem_device =
      mem_log.value()->pager()->device()->device_stats();
  const DeviceIoStats& file_device =
      file_log.value()->pager()->device()->device_stats();
  EXPECT_EQ(mem_device.page_reads, 0u);
  EXPECT_EQ(mem_device.page_writes, 0u);
  EXPECT_EQ(mem_device.syncs, 0u);
  EXPECT_GT(file_device.page_writes, 0u);
}

// The three full-closure algorithms must agree on what the closure *is*
// even while their I/O profiles differ — the distinct-tuple pin above is
// shared, and this keeps the relationship explicit if one row is ever
// re-pinned alone.
TEST(GoldenMetricsTest, FullClosureRowsAgreeOnClosureSize) {
  EXPECT_EQ(kGoldens[0].distinct_tuples, kGoldens[1].distinct_tuples);
  EXPECT_EQ(kGoldens[0].distinct_tuples, kGoldens[2].distinct_tuples);
  EXPECT_EQ(kGoldens[0].selected_tuples, kGoldens[0].distinct_tuples);
}

}  // namespace
}  // namespace tcdb
