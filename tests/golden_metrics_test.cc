// Golden-metrics regression suite: exact page-I/O and tuple counts for
// three catalog families — G5 (F=5, l=200, the paper's center point),
// sparse G2 (F=2, l=200) and dense G11 (F=50, l=200) — across closure
// algorithms plus one partial query each, pinned at the default
// execution parameters (M=20, LRU). Every counter here is deterministic
// by construction (see determinism_test.cc), so any drift — a changed
// replacement decision, a lost marking, an extra restructuring pass — is
// a behavior change that must be explained and re-pinned, not noise.

#include <gtest/gtest.h>

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "bench_support/catalog.h"
#include "core/database.h"

namespace tcdb {
namespace {

struct Golden {
  const char* name;
  Algorithm algorithm;
  bool full_closure;
  int64_t restructure_reads;
  int64_t restructure_writes;
  int64_t compute_reads;
  int64_t compute_writes;
  int64_t tuples_generated;
  int64_t distinct_tuples;
  int64_t selected_tuples;
};

// Values recorded from the seed implementation on G5 instance 0
// (n=2000, F=5, l=200, generator seed per CatalogParams) at M=20/LRU.
const Golden kGoldens[] = {
    {"BTC", Algorithm::kBtc, true,
     39, 41, 16059, 4490, 4945070, 1497673, 1497673},
    {"JKB2", Algorithm::kJkb2, true,
     78, 55, 21895, 23790, 4940471, 1497673, 1497673},
    {"SRCH", Algorithm::kSrch, true,
     37805, 4070, 0, 0, 7227219, 1497673, 1497673},
    {"BTC_PTC_s10", Algorithm::kBtc, false,
     43, 24, 8196, 2419, 2316952, 742122, 4812},
};

// Recorded from the seed implementation on G2 instance 0 (n=2000, F=2,
// l=200) at M=20/LRU — the sparse end of the locality-200 column.
const Golden kGoldensG2[] = {
    {"BTC", Algorithm::kBtc, true,
     16, 34, 4602, 2405, 1214529, 706694, 706694},
    {"JKB2", Algorithm::kJkb2, true,
     32, 42, 6919, 8677, 1304789, 706694, 706694},
    {"BTC_PTC_s10", Algorithm::kBtc, false,
     21, 6, 1183, 776, 232024, 147804, 3106},
};

// Recorded from the seed implementation on G11 instance 0 (n=2000, F=50,
// l=200) at M=20/LRU — the dense end, where restructuring dominates the
// I/O profile.
const Golden kGoldensG11[] = {
    {"BTC", Algorithm::kBtc, true,
     322, 325, 9216, 5403, 4410654, 1950170, 1950170},
    {"JKB2", Algorithm::kJkb2, true,
     644, 333, 16263, 23199, 4302338, 1950170, 1950170},
    {"BTC_PTC_s10", Algorithm::kBtc, false,
     282, 257, 5921, 3690, 2913268, 1268040, 8730},
};

void CheckGoldens(const char* family_name,
                  std::span<const Golden> goldens) {
  const GraphFamily& family = FamilyByName(family_name);
  auto db = MakeCatalogDatabase(family, 0);
  ASSERT_TRUE(db.ok()) << db.status().ToString();

  ExecOptions options;
  options.buffer_pages = 20;

  for (const Golden& golden : goldens) {
    SCOPED_TRACE(std::string(family_name) + "/" + golden.name);
    const QuerySpec query =
        golden.full_closure
            ? QuerySpec::Full()
            : QuerySpec::Partial(CatalogSources(family, 0, 0, 10));
    auto run = db.value()->Execute(golden.algorithm, query, options);
    ASSERT_TRUE(run.ok()) << run.status().ToString();
    const RunMetrics& m = run.value().metrics;
    EXPECT_EQ(m.restructure_reads, golden.restructure_reads);
    EXPECT_EQ(m.restructure_writes, golden.restructure_writes);
    EXPECT_EQ(m.compute_reads, golden.compute_reads);
    EXPECT_EQ(m.compute_writes, golden.compute_writes);
    EXPECT_EQ(m.tuples_generated, golden.tuples_generated);
    EXPECT_EQ(m.distinct_tuples, golden.distinct_tuples);
    EXPECT_EQ(m.selected_tuples, golden.selected_tuples);
  }
}

TEST(GoldenMetricsTest, G5CountersAreExactlyPinned) {
  CheckGoldens("G5", kGoldens);
}

TEST(GoldenMetricsTest, G2CountersAreExactlyPinned) {
  CheckGoldens("G2", kGoldensG2);
}

TEST(GoldenMetricsTest, G11CountersAreExactlyPinned) {
  CheckGoldens("G11", kGoldensG11);
}

// The three full-closure algorithms must agree on what the closure *is*
// even while their I/O profiles differ — the distinct-tuple pin above is
// shared, and this keeps the relationship explicit if one row is ever
// re-pinned alone.
TEST(GoldenMetricsTest, FullClosureRowsAgreeOnClosureSize) {
  EXPECT_EQ(kGoldens[0].distinct_tuples, kGoldens[1].distinct_tuples);
  EXPECT_EQ(kGoldens[0].distinct_tuples, kGoldens[2].distinct_tuples);
  EXPECT_EQ(kGoldens[0].selected_tuples, kGoldens[0].distinct_tuples);
}

}  // namespace
}  // namespace tcdb
