// Tests of the O'Reach observation battery (oreach/observation_battery.h)
// and its serving integration: every battery verdict differentially
// pinned against the BFS reference closure across the paper generator and
// all five scale families, cyclic inputs through the condensation front,
// a 50-seed battery-on vs battery-off bit-identical sweep over full
// ReachService answers, pivot-selection determinism, and image round
// trips with truncation errors.

#include "oreach/observation_battery.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "graph/algorithms.h"
#include "graph/digraph.h"
#include "graph/generator.h"
#include "graph/scale_generator.h"
#include "reach/reach_service.h"
#include "util/codec.h"
#include "util/random.h"

namespace tcdb {
namespace {

ObservationBattery BuildOrDie(
    const Digraph& dag, const ObservationBatteryOptions& options = {},
    std::span<const std::pair<NodeId, NodeId>> traffic = {},
    const DecideProbe& probe = nullptr) {
  auto built = ObservationBattery::Build(dag, options, traffic, probe);
  TCDB_CHECK(built.ok()) << built.status().ToString();
  return std::move(built).value();
}

// Every non-unknown verdict on every pair must agree with the reference
// closure — the battery is only allowed to be incomplete, never wrong.
void ExpectSoundOnAllPairs(const Digraph& dag,
                           const ObservationBattery& battery,
                           const std::string& context) {
  const std::vector<std::vector<NodeId>> closure = ReferenceClosure(dag);
  int64_t decided = 0;
  for (NodeId u = 0; u < dag.NumNodes(); ++u) {
    for (NodeId v = 0; v < dag.NumNodes(); ++v) {
      ReachRule rule = ReachRule::kFallback;
      const ObservationBattery::Verdict verdict =
          battery.TryDecide(u, v, &rule);
      if (verdict == ObservationBattery::Verdict::kUnknown) continue;
      // Reflexive pairs are the service's kTrivial business; the battery
      // must stay out (its negative observations do not hold for u == v).
      ASSERT_NE(u, v) << context << ": battery decided a reflexive pair";
      const bool expected = std::binary_search(closure[u].begin(),
                                               closure[u].end(), v);
      ASSERT_EQ(verdict == ObservationBattery::Verdict::kYes, expected)
          << context << ": u=" << u << " v=" << v
          << " rule=" << ReachRuleName(rule);
      ++decided;
    }
  }
  EXPECT_GT(decided, 0) << context << ": battery decided nothing at all";
}

TEST(ObservationBatteryTest, EmptyAndDegenerate) {
  const ObservationBattery empty;
  EXPECT_EQ(empty.num_nodes(), 0);
  EXPECT_EQ(empty.TryDecide(0, 0), ObservationBattery::Verdict::kUnknown);

  const ObservationBattery one = BuildOrDie(Digraph(1, {}));
  EXPECT_EQ(one.TryDecide(0, 0), ObservationBattery::Verdict::kUnknown);
}

TEST(ObservationBatteryTest, RejectsCyclicInput) {
  const Digraph cyclic(3, {{0, 1}, {1, 2}, {2, 0}});
  auto built = ObservationBattery::Build(cyclic, {});
  EXPECT_FALSE(built.ok());
}

TEST(ObservationBatteryTest, HandDagObservations) {
  // Two parallel diamonds plus an isolated node: 0->1->3, 0->2->3, 4.
  const Digraph dag(5, {{0, 1}, {0, 2}, {1, 3}, {2, 3}});
  const ObservationBattery battery = BuildOrDie(dag);
  // The isolated node is in its own weak component: both directions "no".
  EXPECT_EQ(battery.TryDecide(0, 4), ObservationBattery::Verdict::kNo);
  EXPECT_EQ(battery.TryDecide(4, 3), ObservationBattery::Verdict::kNo);
  // Level/topo observations refute the backward pairs.
  EXPECT_EQ(battery.TryDecide(3, 0), ObservationBattery::Verdict::kNo);
  // Reflexive pairs are never the battery's call.
  EXPECT_EQ(battery.TryDecide(2, 2), ObservationBattery::Verdict::kUnknown);
  ExpectSoundOnAllPairs(dag, battery, "hand dag");
}

// The acceptance differential: every verdict sound on the paper
// generator and on all five scale families.
TEST(ObservationBatteryTest, DifferentialPaperGenerator) {
  for (const uint64_t seed : {1u, 2u, 3u}) {
    GeneratorParams params;
    params.num_nodes = 300;
    params.avg_out_degree = 5;
    params.locality = 60;
    params.seed = seed;
    const Digraph dag(params.num_nodes, GenerateDag(params));
    ExpectSoundOnAllPairs(dag, BuildOrDie(dag),
                          "generator seed " + std::to_string(seed));
  }
}

TEST(ObservationBatteryTest, DifferentialAllScaleFamilies) {
  for (const ScaleFamily family : kAllScaleFamilies) {
    ScaleGraphParams params;
    params.family = family;
    params.num_nodes = 400;
    params.width = 16;
    params.degree = 3;
    params.locality = 32;
    params.seed = 12;
    const Digraph dag(params.num_nodes, ScaleArcList(params));
    ExpectSoundOnAllPairs(dag, BuildOrDie(dag), ScaleFamilyName(family));
  }
}

// Cyclic input through the serving stack: the battery-enabled core is
// built on the condensation; all answers must still match the reference
// closure of the original graph.
TEST(ObservationBatteryTest, CyclicCondensedDifferential) {
  GeneratorParams params;
  params.num_nodes = 200;
  params.avg_out_degree = 4;
  params.locality = 50;
  params.seed = 4;
  ArcList arcs = GenerateDag(params);
  // Back arcs close cycles; the service condenses first.
  arcs.push_back({150, 20});
  arcs.push_back({199, 0});
  arcs.push_back({90, 41});
  const Digraph graph(params.num_nodes, arcs);
  const std::vector<std::vector<NodeId>> closure = ReferenceClosure(graph);

  ReachServiceOptions options;
  options.index.oreach = true;
  auto service = ReachService::Build(arcs, params.num_nodes, options);
  ASSERT_TRUE(service.ok()) << service.status().ToString();
  ASSERT_TRUE(service.value()->condensed());
  ASSERT_TRUE(service.value()->core().has_battery);
  for (NodeId u = 0; u < params.num_nodes; ++u) {
    for (NodeId v = 0; v < params.num_nodes; ++v) {
      const bool expected =
          u == v || std::binary_search(closure[u].begin(),
                                       closure[u].end(), v);
      auto answer = service.value()->Query(u, v);
      ASSERT_TRUE(answer.ok()) << answer.status().ToString();
      ASSERT_EQ(answer.value().reachable, expected)
          << "u=" << u << " v=" << v;
    }
  }
}

// The acceptance sweep: across 50 seeds, a battery-on service must give
// bit-identical answers to a battery-off service on the same traffic.
// (The battery may only move *which rung* answers, never the answer.)
TEST(ObservationBatteryTest, BatteryOnOffBitIdenticalAcross50Seeds) {
  for (uint64_t seed = 1; seed <= 50; ++seed) {
    GeneratorParams params;
    params.num_nodes = 150 + static_cast<NodeId>(seed % 7) * 20;
    params.avg_out_degree = 3 + static_cast<int32_t>(seed % 4);
    params.locality = 40;
    params.seed = seed;
    const ArcList arcs = GenerateDag(params);

    ReachServiceOptions off_options;
    auto off = ReachService::Build(arcs, params.num_nodes, off_options);
    ASSERT_TRUE(off.ok()) << off.status().ToString();

    ReachServiceOptions on_options;
    on_options.index.oreach = true;
    on_options.index.oreach_options.seed = seed;  // vary battery internals
    auto on = ReachService::Build(arcs, params.num_nodes, on_options);
    ASSERT_TRUE(on.ok()) << on.status().ToString();
    ASSERT_TRUE(on.value()->core().has_battery);

    Rng rng(seed * 1315423911ull + 1);
    std::vector<std::pair<NodeId, NodeId>> pairs;
    for (int i = 0; i < 300; ++i) {
      pairs.emplace_back(
          static_cast<NodeId>(rng.Uniform(0, params.num_nodes - 1)),
          static_cast<NodeId>(rng.Uniform(0, params.num_nodes - 1)));
    }
    auto off_answers = off.value()->QueryBatch(pairs);
    auto on_answers = on.value()->QueryBatch(pairs);
    ASSERT_TRUE(off_answers.ok()) << off_answers.status().ToString();
    ASSERT_TRUE(on_answers.ok()) << on_answers.status().ToString();
    for (size_t i = 0; i < pairs.size(); ++i) {
      ASSERT_EQ(off_answers.value()[i].reachable,
                on_answers.value()[i].reachable)
          << "seed=" << seed << " pair " << pairs[i].first << "->"
          << pairs[i].second;
    }
  }
}

// Pivot selection is a pure function of (dag, options, traffic): two
// builds must pick the same pivots and serialize byte-identically.
TEST(ObservationBatteryTest, PivotSelectionIsDeterministic) {
  GeneratorParams params;
  params.num_nodes = 400;
  params.avg_out_degree = 5;
  params.locality = 80;
  params.seed = 6;
  const Digraph dag(params.num_nodes, GenerateDag(params));

  // A fixed traffic sample (what a bench would feed from the model).
  Rng rng(99);
  std::vector<std::pair<NodeId, NodeId>> traffic;
  for (int i = 0; i < 2000; ++i) {
    traffic.emplace_back(
        static_cast<NodeId>(rng.Uniform(0, params.num_nodes - 1)),
        static_cast<NodeId>(rng.Uniform(0, params.num_nodes - 1)));
  }

  const ObservationBattery a = BuildOrDie(dag, {}, traffic);
  const ObservationBattery b = BuildOrDie(dag, {}, traffic);
  EXPECT_GT(a.num_pivots(), 0);
  EXPECT_EQ(a.pivot_nodes(), b.pivot_nodes());
  std::string image_a;
  std::string image_b;
  a.SerializeAppend(&image_a);
  b.SerializeAppend(&image_b);
  EXPECT_EQ(image_a, image_b);

  // A different traffic shape is allowed to (and here does) move the
  // pivots — the training signal is real, not decorative.
  std::vector<std::pair<NodeId, NodeId>> skewed;
  for (int i = 0; i < 2000; ++i) {
    skewed.emplace_back(static_cast<NodeId>(rng.Uniform(0, 10)),
                        static_cast<NodeId>(rng.Uniform(0, 10)));
  }
  const ObservationBattery c = BuildOrDie(dag, {}, skewed);
  EXPECT_NE(a.pivot_nodes(), c.pivot_nodes());
}

TEST(ObservationBatteryTest, SerializationRoundTrip) {
  GeneratorParams params;
  params.num_nodes = 250;
  params.avg_out_degree = 4;
  params.locality = 50;
  params.seed = 8;
  const Digraph dag(params.num_nodes, GenerateDag(params));
  const ObservationBattery battery = BuildOrDie(dag);

  std::string image;
  battery.SerializeAppend(&image);
  codec::Reader reader(image.data(), image.size());
  auto restored = ObservationBattery::Deserialize(&reader);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(reader.remaining(), 0u);

  EXPECT_EQ(restored.value().num_nodes(), battery.num_nodes());
  EXPECT_EQ(restored.value().num_orders(), battery.num_orders());
  EXPECT_EQ(restored.value().num_cuts(), battery.num_cuts());
  EXPECT_EQ(restored.value().pivot_nodes(), battery.pivot_nodes());
  for (NodeId u = 0; u < params.num_nodes; ++u) {
    for (NodeId v = 0; v < params.num_nodes; ++v) {
      ASSERT_EQ(restored.value().TryDecide(u, v), battery.TryDecide(u, v))
          << "u=" << u << " v=" << v;
    }
  }
  // Re-serializing the restored battery reproduces the image bit-for-bit.
  std::string image2;
  restored.value().SerializeAppend(&image2);
  EXPECT_EQ(image, image2);
}

TEST(ObservationBatteryTest, TruncatedImagesError) {
  const Digraph dag(40, {{0, 1}, {1, 2}, {3, 4}, {2, 5}, {4, 5}});
  const ObservationBattery battery = BuildOrDie(dag);
  std::string image;
  battery.SerializeAppend(&image);
  for (const size_t keep :
       {size_t{0}, size_t{1}, size_t{3}, image.size() / 4, image.size() / 2,
        image.size() - 1}) {
    const std::string truncated = image.substr(0, keep);
    codec::Reader reader(truncated.data(), truncated.size());
    auto restored = ObservationBattery::Deserialize(&reader);
    EXPECT_FALSE(restored.ok()) << "accepted a " << keep << "-byte prefix";
  }
}

// The battery rung shows up in the service ladder: on traffic the base
// rules cannot decide, kObservation answers a nonzero share, attributed
// to individual observation rules, and the rule counters sum to queries.
TEST(ObservationBatteryTest, ServiceLadderAttribution) {
  GeneratorParams params;
  params.num_nodes = 500;
  params.avg_out_degree = 5;
  params.locality = 100;
  params.seed = 13;
  const ArcList arcs = GenerateDag(params);

  ReachServiceOptions options;
  options.index.oreach = true;
  auto service = ReachService::Build(arcs, params.num_nodes, options);
  ASSERT_TRUE(service.ok()) << service.status().ToString();

  Rng rng(31);
  std::vector<std::pair<NodeId, NodeId>> pairs;
  for (int i = 0; i < 4000; ++i) {
    pairs.emplace_back(
        static_cast<NodeId>(rng.Uniform(0, params.num_nodes - 1)),
        static_cast<NodeId>(rng.Uniform(0, params.num_nodes - 1)));
  }
  auto answers = service.value()->QueryBatch(pairs);
  ASSERT_TRUE(answers.ok()) << answers.status().ToString();

  const ReachStats& stats = service.value()->stats();
  EXPECT_GT(stats.Decided(ReachStage::kObservation), 0);
  int64_t rule_total = 0;
  int64_t observation_rules = 0;
  for (int r = 0; r < kNumReachRules; ++r) {
    rule_total += stats.rule_decided[r];
    const ReachRule rule = static_cast<ReachRule>(r);
    if (rule >= ReachRule::kObsTopoOrder &&
        rule <= ReachRule::kObsPivotBwdCut) {
      observation_rules += stats.rule_decided[r];
    }
  }
  EXPECT_EQ(rule_total, stats.queries);
  EXPECT_EQ(observation_rules, stats.Decided(ReachStage::kObservation));
}

}  // namespace
}  // namespace tcdb
