// Catalog / experiment-driver tests: family definitions, seed handling,
// QUICK mode, source-set determinism, averaging, and the TupleWriter used
// for materialized output.

#include <gtest/gtest.h>

#include <cstdlib>
#include <set>

#include "bench_support/catalog.h"
#include "bench_support/driver.h"

namespace tcdb {
namespace {

TEST(CatalogTest, TwelveFamiliesMatchTable1) {
  const auto& catalog = GraphCatalog();
  ASSERT_EQ(catalog.size(), 12u);
  EXPECT_EQ(catalog[0].name, "G1");
  EXPECT_EQ(catalog[11].name, "G12");
  // The F x l grid of Table 1.
  std::set<std::pair<int32_t, int32_t>> combos;
  for (const GraphFamily& family : catalog) {
    combos.emplace(family.avg_out_degree, family.locality);
  }
  EXPECT_EQ(combos.size(), 12u);
  for (const int32_t degree : {2, 5, 20, 50}) {
    for (const int32_t locality : {20, 200, 2000}) {
      EXPECT_TRUE(combos.contains({degree, locality}))
          << "F=" << degree << " l=" << locality;
    }
  }
}

TEST(CatalogTest, FamilyByNameRoundTrip) {
  EXPECT_EQ(FamilyByName("G7").avg_out_degree, 20);
  EXPECT_EQ(FamilyByName("G7").locality, 20);
}

TEST(CatalogTest, SeedsAreDistinctAcrossInstancesAndFamilies) {
  std::set<uint64_t> seeds;
  for (const GraphFamily& family : GraphCatalog()) {
    for (int32_t i = 0; i < 5; ++i) {
      seeds.insert(CatalogParams(family, i).seed);
    }
  }
  EXPECT_EQ(seeds.size(), 60u);
}

TEST(CatalogTest, DatabaseHas2000Nodes) {
  auto db = MakeCatalogDatabase(FamilyByName("G1"), 0);
  ASSERT_TRUE(db.ok());
  EXPECT_EQ(db.value()->num_nodes(), 2000);
  EXPECT_GT(db.value()->arcs().size(), 2000u);
}

TEST(CatalogTest, QuickModeReducesRepetitions) {
  unsetenv("QUICK");
  EXPECT_EQ(NumSeeds(), 5);
  EXPECT_EQ(NumSourceSets(), 5);
  setenv("QUICK", "1", 1);
  EXPECT_EQ(NumSeeds(), 2);
  EXPECT_EQ(NumSourceSets(), 2);
  unsetenv("QUICK");
}

TEST(CatalogTest, SourceSetsAreDeterministicAndDistinct) {
  const GraphFamily& family = FamilyByName("G5");
  const auto a = CatalogSources(family, 0, 0, 10);
  EXPECT_EQ(a, CatalogSources(family, 0, 0, 10));
  EXPECT_NE(a, CatalogSources(family, 0, 1, 10));
  EXPECT_NE(a, CatalogSources(family, 1, 0, 10));
  EXPECT_EQ(a.size(), 10u);
}

TEST(DriverTest, RunExperimentAveragesRuns) {
  setenv("QUICK", "1", 1);
  ExecOptions options;
  options.buffer_pages = 10;
  auto ctc = RunExperiment(FamilyByName("G1"), Algorithm::kBtc, -1, options);
  ASSERT_TRUE(ctc.ok());
  EXPECT_EQ(ctc.value().runs, 2);  // seeds only for CTC
  EXPECT_GT(ctc.value().metrics.TotalIo(), 0u);
  auto ptc = RunExperiment(FamilyByName("G1"), Algorithm::kBtc, 5, options);
  ASSERT_TRUE(ptc.ok());
  EXPECT_EQ(ptc.value().runs, 4);  // seeds x source sets
  unsetenv("QUICK");
}

TEST(DriverTest, WithThousands) {
  EXPECT_EQ(WithThousands(0), "0");
  EXPECT_EQ(WithThousands(999), "999");
  EXPECT_EQ(WithThousands(1000), "1,000");
  EXPECT_EQ(WithThousands(1234567), "1,234,567");
  EXPECT_EQ(WithThousands(-1234567), "-1,234,567");
}

TEST(TupleWriterTest, PacksAndCounts) {
  Pager pager;
  const FileId file = pager.CreateFile("out");
  BufferManager buffers(&pager, 8, PagePolicy::kLru);
  TupleWriter writer(&buffers, file);
  for (int32_t i = 0; i < 600; ++i) {
    ASSERT_TRUE(writer.Append(Arc{i, i + 1}).ok());
  }
  EXPECT_EQ(writer.count(), 600);
  EXPECT_EQ(writer.num_pages(), 3u);  // ceil(600 / 256)
  buffers.FlushAll();
  // Verify contents directly.
  Page page;
  pager.ReadPage(file, 1, &page);
  EXPECT_EQ(page.As<Arc>(0)[0].src, 256);
  pager.ReadPage(file, 2, &page);
  EXPECT_EQ(page.As<Arc>(0)[87].src, 599);
}

TEST(TupleWriterTest, EmptyWriter) {
  Pager pager;
  const FileId file = pager.CreateFile("out");
  BufferManager buffers(&pager, 4, PagePolicy::kLru);
  TupleWriter writer(&buffers, file);
  EXPECT_EQ(writer.count(), 0);
  EXPECT_EQ(writer.num_pages(), 0u);
}

}  // namespace
}  // namespace tcdb
