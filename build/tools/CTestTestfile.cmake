# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_generate_full "/root/repo/build/tools/tcdb_cli" "--generate" "100,3,20,1" "--algorithm" "btc" "--full")
set_tests_properties(cli_generate_full PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;5;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_analyze "/root/repo/build/tools/tcdb_cli" "--generate" "100,3,20,1" "--analyze")
set_tests_properties(cli_analyze PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;7;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_advise "/root/repo/build/tools/tcdb_cli" "--generate" "200,3,20,1" "--advise" "--random-sources" "4,2")
set_tests_properties(cli_advise PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;9;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_answer_sources "/root/repo/build/tools/tcdb_cli" "--generate" "100,3,20,1" "--algorithm" "jkb2" "--sources" "0,5" "--answer")
set_tests_properties(cli_answer_sources PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;11;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_aggregate "/root/repo/build/tools/tcdb_cli" "--generate" "100,3,20,1" "--aggregate" "path-count" "--sources" "0" "--answer")
set_tests_properties(cli_aggregate PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;14;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_policies "/root/repo/build/tools/tcdb_cli" "--generate" "100,3,20,1" "--algorithm" "hyb" "--buffer-pages" "8" "--ilimit" "0.3" "--page-policy" "clock" "--list-policy" "move-largest")
set_tests_properties(cli_policies PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;17;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_help "/root/repo/build/tools/tcdb_cli" "--help")
set_tests_properties(cli_help PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;21;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_unknown_flag "/root/repo/build/tools/tcdb_cli" "--bogus")
set_tests_properties(cli_unknown_flag PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;22;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_unknown_algorithm "/root/repo/build/tools/tcdb_cli" "--generate" "50,2,10,1" "--algorithm" "nope")
set_tests_properties(cli_unknown_algorithm PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;24;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_missing_input "/root/repo/build/tools/tcdb_cli" "--full")
set_tests_properties(cli_missing_input PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;27;add_test;/root/repo/tools/CMakeLists.txt;0;")
