# Empty compiler generated dependencies file for tcdb_cli.
# This may be replaced when dependencies are built.
