file(REMOVE_RECURSE
  "CMakeFiles/tcdb_cli.dir/tcdb_cli.cc.o"
  "CMakeFiles/tcdb_cli.dir/tcdb_cli.cc.o.d"
  "tcdb_cli"
  "tcdb_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcdb_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
