
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bench_support/catalog.cc" "src/CMakeFiles/tcdb.dir/bench_support/catalog.cc.o" "gcc" "src/CMakeFiles/tcdb.dir/bench_support/catalog.cc.o.d"
  "/root/repo/src/bench_support/driver.cc" "src/CMakeFiles/tcdb.dir/bench_support/driver.cc.o" "gcc" "src/CMakeFiles/tcdb.dir/bench_support/driver.cc.o.d"
  "/root/repo/src/core/advisor.cc" "src/CMakeFiles/tcdb.dir/core/advisor.cc.o" "gcc" "src/CMakeFiles/tcdb.dir/core/advisor.cc.o.d"
  "/root/repo/src/core/baselines.cc" "src/CMakeFiles/tcdb.dir/core/baselines.cc.o" "gcc" "src/CMakeFiles/tcdb.dir/core/baselines.cc.o.d"
  "/root/repo/src/core/cyclic.cc" "src/CMakeFiles/tcdb.dir/core/cyclic.cc.o" "gcc" "src/CMakeFiles/tcdb.dir/core/cyclic.cc.o.d"
  "/root/repo/src/core/database.cc" "src/CMakeFiles/tcdb.dir/core/database.cc.o" "gcc" "src/CMakeFiles/tcdb.dir/core/database.cc.o.d"
  "/root/repo/src/core/generalized.cc" "src/CMakeFiles/tcdb.dir/core/generalized.cc.o" "gcc" "src/CMakeFiles/tcdb.dir/core/generalized.cc.o.d"
  "/root/repo/src/core/list_algorithms.cc" "src/CMakeFiles/tcdb.dir/core/list_algorithms.cc.o" "gcc" "src/CMakeFiles/tcdb.dir/core/list_algorithms.cc.o.d"
  "/root/repo/src/core/metrics.cc" "src/CMakeFiles/tcdb.dir/core/metrics.cc.o" "gcc" "src/CMakeFiles/tcdb.dir/core/metrics.cc.o.d"
  "/root/repo/src/core/paths.cc" "src/CMakeFiles/tcdb.dir/core/paths.cc.o" "gcc" "src/CMakeFiles/tcdb.dir/core/paths.cc.o.d"
  "/root/repo/src/core/restructure.cc" "src/CMakeFiles/tcdb.dir/core/restructure.cc.o" "gcc" "src/CMakeFiles/tcdb.dir/core/restructure.cc.o.d"
  "/root/repo/src/core/run_context.cc" "src/CMakeFiles/tcdb.dir/core/run_context.cc.o" "gcc" "src/CMakeFiles/tcdb.dir/core/run_context.cc.o.d"
  "/root/repo/src/core/session.cc" "src/CMakeFiles/tcdb.dir/core/session.cc.o" "gcc" "src/CMakeFiles/tcdb.dir/core/session.cc.o.d"
  "/root/repo/src/core/tree_algorithms.cc" "src/CMakeFiles/tcdb.dir/core/tree_algorithms.cc.o" "gcc" "src/CMakeFiles/tcdb.dir/core/tree_algorithms.cc.o.d"
  "/root/repo/src/graph/algorithms.cc" "src/CMakeFiles/tcdb.dir/graph/algorithms.cc.o" "gcc" "src/CMakeFiles/tcdb.dir/graph/algorithms.cc.o.d"
  "/root/repo/src/graph/analyzer.cc" "src/CMakeFiles/tcdb.dir/graph/analyzer.cc.o" "gcc" "src/CMakeFiles/tcdb.dir/graph/analyzer.cc.o.d"
  "/root/repo/src/graph/digraph.cc" "src/CMakeFiles/tcdb.dir/graph/digraph.cc.o" "gcc" "src/CMakeFiles/tcdb.dir/graph/digraph.cc.o.d"
  "/root/repo/src/graph/generator.cc" "src/CMakeFiles/tcdb.dir/graph/generator.cc.o" "gcc" "src/CMakeFiles/tcdb.dir/graph/generator.cc.o.d"
  "/root/repo/src/index/bplus_tree.cc" "src/CMakeFiles/tcdb.dir/index/bplus_tree.cc.o" "gcc" "src/CMakeFiles/tcdb.dir/index/bplus_tree.cc.o.d"
  "/root/repo/src/relation/graph_io.cc" "src/CMakeFiles/tcdb.dir/relation/graph_io.cc.o" "gcc" "src/CMakeFiles/tcdb.dir/relation/graph_io.cc.o.d"
  "/root/repo/src/relation/relation_file.cc" "src/CMakeFiles/tcdb.dir/relation/relation_file.cc.o" "gcc" "src/CMakeFiles/tcdb.dir/relation/relation_file.cc.o.d"
  "/root/repo/src/storage/buffer_manager.cc" "src/CMakeFiles/tcdb.dir/storage/buffer_manager.cc.o" "gcc" "src/CMakeFiles/tcdb.dir/storage/buffer_manager.cc.o.d"
  "/root/repo/src/storage/io_stats.cc" "src/CMakeFiles/tcdb.dir/storage/io_stats.cc.o" "gcc" "src/CMakeFiles/tcdb.dir/storage/io_stats.cc.o.d"
  "/root/repo/src/storage/pager.cc" "src/CMakeFiles/tcdb.dir/storage/pager.cc.o" "gcc" "src/CMakeFiles/tcdb.dir/storage/pager.cc.o.d"
  "/root/repo/src/storage/replacement_policy.cc" "src/CMakeFiles/tcdb.dir/storage/replacement_policy.cc.o" "gcc" "src/CMakeFiles/tcdb.dir/storage/replacement_policy.cc.o.d"
  "/root/repo/src/succ/successor_list_store.cc" "src/CMakeFiles/tcdb.dir/succ/successor_list_store.cc.o" "gcc" "src/CMakeFiles/tcdb.dir/succ/successor_list_store.cc.o.d"
  "/root/repo/src/succ/tree_codec.cc" "src/CMakeFiles/tcdb.dir/succ/tree_codec.cc.o" "gcc" "src/CMakeFiles/tcdb.dir/succ/tree_codec.cc.o.d"
  "/root/repo/src/util/bit_vector.cc" "src/CMakeFiles/tcdb.dir/util/bit_vector.cc.o" "gcc" "src/CMakeFiles/tcdb.dir/util/bit_vector.cc.o.d"
  "/root/repo/src/util/check.cc" "src/CMakeFiles/tcdb.dir/util/check.cc.o" "gcc" "src/CMakeFiles/tcdb.dir/util/check.cc.o.d"
  "/root/repo/src/util/env.cc" "src/CMakeFiles/tcdb.dir/util/env.cc.o" "gcc" "src/CMakeFiles/tcdb.dir/util/env.cc.o.d"
  "/root/repo/src/util/random.cc" "src/CMakeFiles/tcdb.dir/util/random.cc.o" "gcc" "src/CMakeFiles/tcdb.dir/util/random.cc.o.d"
  "/root/repo/src/util/stats.cc" "src/CMakeFiles/tcdb.dir/util/stats.cc.o" "gcc" "src/CMakeFiles/tcdb.dir/util/stats.cc.o.d"
  "/root/repo/src/util/status.cc" "src/CMakeFiles/tcdb.dir/util/status.cc.o" "gcc" "src/CMakeFiles/tcdb.dir/util/status.cc.o.d"
  "/root/repo/src/util/table_printer.cc" "src/CMakeFiles/tcdb.dir/util/table_printer.cc.o" "gcc" "src/CMakeFiles/tcdb.dir/util/table_printer.cc.o.d"
  "/root/repo/src/util/timer.cc" "src/CMakeFiles/tcdb.dir/util/timer.cc.o" "gcc" "src/CMakeFiles/tcdb.dir/util/timer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
