file(REMOVE_RECURSE
  "libtcdb.a"
)
