# Empty compiler generated dependencies file for tcdb.
# This may be replaced when dependencies are built.
