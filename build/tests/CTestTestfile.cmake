# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/storage_test[1]_include.cmake")
include("/root/repo/build/tests/buffer_manager_test[1]_include.cmake")
include("/root/repo/build/tests/bplus_tree_test[1]_include.cmake")
include("/root/repo/build/tests/relation_test[1]_include.cmake")
include("/root/repo/build/tests/graph_test[1]_include.cmake")
include("/root/repo/build/tests/analyzer_test[1]_include.cmake")
include("/root/repo/build/tests/successor_list_store_test[1]_include.cmake")
include("/root/repo/build/tests/tree_codec_test[1]_include.cmake")
include("/root/repo/build/tests/algorithm_correctness_test[1]_include.cmake")
include("/root/repo/build/tests/metrics_test[1]_include.cmake")
include("/root/repo/build/tests/database_test[1]_include.cmake")
include("/root/repo/build/tests/paper_claims_test[1]_include.cmake")
include("/root/repo/build/tests/restructure_test[1]_include.cmake")
include("/root/repo/build/tests/cyclic_test[1]_include.cmake")
include("/root/repo/build/tests/paths_test[1]_include.cmake")
include("/root/repo/build/tests/advisor_test[1]_include.cmake")
include("/root/repo/build/tests/graph_io_test[1]_include.cmake")
include("/root/repo/build/tests/hybrid_test[1]_include.cmake")
include("/root/repo/build/tests/bench_support_test[1]_include.cmake")
include("/root/repo/build/tests/session_test[1]_include.cmake")
include("/root/repo/build/tests/generalized_test[1]_include.cmake")
include("/root/repo/build/tests/buffer_model_test[1]_include.cmake")
include("/root/repo/build/tests/baselines_test[1]_include.cmake")
include("/root/repo/build/tests/determinism_test[1]_include.cmake")
