file(REMOVE_RECURSE
  "CMakeFiles/algorithm_correctness_test.dir/algorithm_correctness_test.cc.o"
  "CMakeFiles/algorithm_correctness_test.dir/algorithm_correctness_test.cc.o.d"
  "algorithm_correctness_test"
  "algorithm_correctness_test.pdb"
  "algorithm_correctness_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/algorithm_correctness_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
