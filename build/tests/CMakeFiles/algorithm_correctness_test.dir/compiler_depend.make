# Empty compiler generated dependencies file for algorithm_correctness_test.
# This may be replaced when dependencies are built.
