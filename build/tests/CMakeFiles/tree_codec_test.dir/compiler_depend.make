# Empty compiler generated dependencies file for tree_codec_test.
# This may be replaced when dependencies are built.
