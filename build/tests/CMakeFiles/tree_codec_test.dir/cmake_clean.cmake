file(REMOVE_RECURSE
  "CMakeFiles/tree_codec_test.dir/tree_codec_test.cc.o"
  "CMakeFiles/tree_codec_test.dir/tree_codec_test.cc.o.d"
  "tree_codec_test"
  "tree_codec_test.pdb"
  "tree_codec_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tree_codec_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
