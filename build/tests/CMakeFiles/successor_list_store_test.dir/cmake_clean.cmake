file(REMOVE_RECURSE
  "CMakeFiles/successor_list_store_test.dir/successor_list_store_test.cc.o"
  "CMakeFiles/successor_list_store_test.dir/successor_list_store_test.cc.o.d"
  "successor_list_store_test"
  "successor_list_store_test.pdb"
  "successor_list_store_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/successor_list_store_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
