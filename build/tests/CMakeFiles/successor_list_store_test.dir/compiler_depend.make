# Empty compiler generated dependencies file for successor_list_store_test.
# This may be replaced when dependencies are built.
