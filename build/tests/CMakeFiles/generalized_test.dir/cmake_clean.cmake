file(REMOVE_RECURSE
  "CMakeFiles/generalized_test.dir/generalized_test.cc.o"
  "CMakeFiles/generalized_test.dir/generalized_test.cc.o.d"
  "generalized_test"
  "generalized_test.pdb"
  "generalized_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/generalized_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
