file(REMOVE_RECURSE
  "CMakeFiles/buffer_model_test.dir/buffer_model_test.cc.o"
  "CMakeFiles/buffer_model_test.dir/buffer_model_test.cc.o.d"
  "buffer_model_test"
  "buffer_model_test.pdb"
  "buffer_model_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/buffer_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
