# Empty dependencies file for buffer_model_test.
# This may be replaced when dependencies are built.
