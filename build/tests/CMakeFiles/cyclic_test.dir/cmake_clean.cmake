file(REMOVE_RECURSE
  "CMakeFiles/cyclic_test.dir/cyclic_test.cc.o"
  "CMakeFiles/cyclic_test.dir/cyclic_test.cc.o.d"
  "cyclic_test"
  "cyclic_test.pdb"
  "cyclic_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cyclic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
