# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;13;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_reachability "/root/repo/build/examples/reachability_queries" "300" "3")
set_tests_properties(example_reachability PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;14;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_workload "/root/repo/build/examples/workload_explorer" "300" "4" "40" "2")
set_tests_properties(example_workload PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_policy "/root/repo/build/examples/policy_tuning" "300" "3" "100")
set_tests_properties(example_policy PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_paths "/root/repo/build/examples/dependency_paths" "200" "3" "4")
set_tests_properties(example_paths PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
