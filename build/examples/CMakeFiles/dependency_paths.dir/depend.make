# Empty dependencies file for dependency_paths.
# This may be replaced when dependencies are built.
