file(REMOVE_RECURSE
  "CMakeFiles/dependency_paths.dir/dependency_paths.cpp.o"
  "CMakeFiles/dependency_paths.dir/dependency_paths.cpp.o.d"
  "dependency_paths"
  "dependency_paths.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dependency_paths.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
