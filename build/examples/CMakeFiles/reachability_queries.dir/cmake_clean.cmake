file(REMOVE_RECURSE
  "CMakeFiles/reachability_queries.dir/reachability_queries.cpp.o"
  "CMakeFiles/reachability_queries.dir/reachability_queries.cpp.o.d"
  "reachability_queries"
  "reachability_queries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reachability_queries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
