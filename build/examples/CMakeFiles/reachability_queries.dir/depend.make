# Empty dependencies file for reachability_queries.
# This may be replaced when dependencies are built.
