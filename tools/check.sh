#!/usr/bin/env bash
# Tier-1 verification: pin-discipline lint, configure, build, full test
# suite, then the randomized storage stress harness under ASan+UBSan.
# Usage: tools/check.sh [build-dir]   (default: build)
set -euo pipefail
cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"

# --- Pin-discipline lint: outside src/storage/ (and the tests, which
# exercise the raw API on purpose), pages are pinned only through
# PageGuard/NewPageGuard — a raw FetchPage/NewPage/Unpin call site is a
# review error even when it happens to be balanced.
raw_pins=$(grep -rnE '(->|\.)(FetchPage|NewPage|Unpin)\(' \
    src bench examples tools --include='*.cc' --include='*.h' \
    | grep -v '^src/storage/' || true)
if [[ -n "${raw_pins}" ]]; then
  echo "error: raw buffer-pin calls outside src/storage/ (use PageGuard):"
  echo "${raw_pins}"
  exit 1
fi

cmake -B "$BUILD_DIR" -S .
cmake --build "$BUILD_DIR" -j "$(nproc)"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"

# --- Sanitized stress sweep: every algorithm x replacement policy on 50
# randomized (graph, tiny pool, query) configurations, differentially
# checked against the reference closure with the buffer-pool audits armed
# (Debug keeps the TCDB_DCHECK phase-boundary audits on).
SAN_DIR="${BUILD_DIR}-asan"
cmake -B "$SAN_DIR" -S . -DCMAKE_BUILD_TYPE=Debug \
    -DTCDB_SANITIZE=address,undefined
cmake --build "$SAN_DIR" -j "$(nproc)" --target tcdb_cli
"$SAN_DIR"/tools/tcdb_cli stress --seeds 50 --base-seed 1

# --- Sanitized bit-matrix kernel differential: the scalar / uint64 /
# AVX2 backends compared bit-for-bit on every graph shape, under
# ASan+UBSan so a tail-word overrun or misaligned vector load is an
# error, not a silent wrong bit. Runs the full differential twice — once
# with the AVX2 path eligible (the default build above) and once in a
# uint64-only tree (-DTCDB_AVX2=OFF) so the portable path is exercised
# even on AVX2 hardware.
cmake --build "$SAN_DIR" -j "$(nproc)" --target bit_matrix_test
"$SAN_DIR"/tests/bit_matrix_test
NOAVX_DIR="${BUILD_DIR}-asan-noavx2"
cmake -B "$NOAVX_DIR" -S . -DCMAKE_BUILD_TYPE=Debug \
    -DTCDB_SANITIZE=address,undefined -DTCDB_AVX2=OFF
cmake --build "$NOAVX_DIR" -j "$(nproc)" --target bit_matrix_test
"$NOAVX_DIR"/tests/bit_matrix_test

# --- Sanitized mutation differential: 50 randomized mixed
# insert/delete/query traces through the full dynamic stack
# (MutationLog -> DynamicReachService -> IndexRebuilder), every answer
# checked against a reference closure at that epoch AND at every epoch
# boundary (validate-every defaults to 1). Runs twice — incremental
# tier on (the default) and forced off — over bit-identical traces; the
# printed answer digests must match, proving the tier changes only which
# stage (and how much CPU) answers, never what is answered.
on_out=$("$SAN_DIR"/tools/tcdb_cli mutate-stress --seeds 50 --base-seed 1)
echo "${on_out}"
off_out=$("$SAN_DIR"/tools/tcdb_cli mutate-stress --seeds 50 --base-seed 1 \
    --no-incremental)
echo "${off_out}"
on_digest=$(grep '^answer digest' <<<"${on_out}")
off_digest=$(grep '^answer digest' <<<"${off_out}")
if [[ -z "${on_digest}" || "${on_digest}" != "${off_digest}" ]]; then
  echo "error: incremental tier changed answers" \
       "(on: '${on_digest}', off: '${off_digest}')"
  exit 1
fi

# --- Sanitized crash differential: 50 randomized kill-and-recover runs
# through the durable stack (WAL + checkpoints on a fault-injecting
# filesystem) — every recovered state differentially checked against the
# reference graph at the crash point, with torn-write repair exercised.
"$SAN_DIR"/tools/tcdb_cli crash-stress --seeds 50 --base-seed 1

# --- Sanitized failover differential: 50 randomized primary-kill runs
# through the replication stack (WAL shipping to live followers, some
# attached mid-trace, primary on a fault-injecting filesystem) — after
# every kill a follower is promoted and checked arc-for-arc and
# reachability-for-reachability against the reference graph, then serves
# a post-failover write trace of its own.
"$SAN_DIR"/tools/tcdb_cli failover-stress --seeds 50 --base-seed 1

# --- Sanitized scale smoke: a 10^5-node ChainIndex build plus sampled
# differential against the exact BFS cones (--check), once on a pure DAG
# family and once through the SCC-condensation front, so an index-side
# overflow or uninitialized frontier row at real scale trips the
# sanitizers rather than a lucky assertion.
"$SAN_DIR"/tools/tcdb_cli scale-bench --family layered --n 100000 \
    --width 64 --degree 4 --queries 50000 --seed 1 --check 4
"$SAN_DIR"/tools/tcdb_cli scale-bench --family scale-free --n 100000 \
    --locality 64 --degree 4 --cyclic 500 --queries 50000 --seed 1 \
    --check 4

# --- Sanitized observation-battery differential: the battery's full
# label bank (extra topological orders, levels, negative cuts,
# traffic-trained pivots) verified sound against the BFS reference
# closure across the generator and scale families, plus the CLI's
# workload-bench --check smoke, which serves an adversarial mined mix on
# battery-off and battery-on cores and requires bit-identical answers
# that match a DFS reference — all under ASan+UBSan so an off-by-one in
# a cut bit-set or pivot cone is a crash, not a wrong "no".
cmake --build "$SAN_DIR" -j "$(nproc)" --target oreach_battery_test
"$SAN_DIR"/tests/oreach_battery_test
"$SAN_DIR"/tools/tcdb_cli workload-bench gen:800,5,160,3 \
    --workload adversarial --queries 5000 --seed 1 --check 800
"$SAN_DIR"/tools/tcdb_cli workload-bench gen:600,4,120,9 \
    --workload mixed --queries 5000 --seed 2 --check 600

# --- Concurrency tier under ThreadSanitizer: the multi-threaded
# ReachServer tests, the epoch-swap-under-load tests, the
# checkpoint-under-rebuild persistence test, the follower-catchup
# replication tests, the chain-backend ReachServer differential
# (concurrent clients over a kChain core, scale_backend_test), the
# battery-core sharded-serving tests (oreach_server_test — the battery is
# shared read-only by every shard, so a missing happens-before is a TSan
# report here), and the CLI smokes that drive worker/rebuilder/apply
# threads rerun in a separate TSan tree — TSan cannot share a build with
# ASan, hence the third directory.
TSAN_DIR="${BUILD_DIR}-tsan"
cmake -B "$TSAN_DIR" -S . -DCMAKE_BUILD_TYPE=Debug -DTCDB_TSAN=ON
cmake --build "$TSAN_DIR" -j "$(nproc)" \
    --target reach_server_test snapshot_swap_test incremental_swap_test \
    persist_serving_test replica_test scale_backend_test \
    oreach_server_test tcdb_cli
ctest --test-dir "$TSAN_DIR" --output-on-failure -L concurrency
