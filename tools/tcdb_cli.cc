// tcdb command-line driver: run any of the study's algorithms on a graph
// from a file or from the synthetic generator, print the answer and/or the
// full metric bundle, analyze workloads, and ask the advisor.
//
// Examples:
//   tcdb_cli --generate 2000,5,200,1 --algorithm btc --full
//   tcdb_cli --graph g.txt --algorithm jkb2 --sources 3,17,99 --answer
//   tcdb_cli --graph g.txt --analyze
//   tcdb_cli --generate 2000,50,200,1 --advise --sources 1,2,3,4,5

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "bench_support/stress.h"
#include "core/advisor.h"
#include "graph/algorithms.h"
#include "graph/scale_generator.h"
#include "scale/chain_index.h"
#include "util/timer.h"
#include "dynamic/dynamic_reach_service.h"
#include "dynamic/index_rebuilder.h"
#include "dynamic/mutation_log.h"
#include "dynamic/mutation_stress.h"
#include "core/cyclic.h"
#include "core/generalized.h"
#include "core/database.h"
#include "graph/digraph.h"
#include "graph/generator.h"
#include "persist/crash_harness.h"
#include "persist/durable_service.h"
#include "persist/fs.h"
#include "reach/load_driver.h"
#include "replica/failover_harness.h"
#include "replica/replica_bench.h"
#include "reach/reach_server.h"
#include "reach/reach_service.h"
#include "relation/graph_io.h"
#include "util/random.h"

namespace tcdb {
namespace {

void Usage() {
  std::fprintf(stderr, R"(usage: tcdb_cli [options]
       tcdb_cli reach <graph> <src> <dst> [--explain]
       tcdb_cli serve-bench <graph> [--shards N] [--clients N]
                [--queries N] [--batch N] [--queue N] [--seed S]
                [--workload W] [--battery] [--trace FILE]
       tcdb_cli workload-bench <graph> [--workload W] [--queries N]
                [--seed S] [--no-battery] [--check K]
                [--dump-trace FILE] [--replay FILE]
       tcdb_cli stress [--seeds N] [--base-seed S] [--verbose]
       tcdb_cli mutate-bench <graph> [--ops N] [--update-ratio R]
                [--delete-share D] [--rebuild-every K] [--budget B]
                [--seed S] [--no-incremental]
       tcdb_cli mutate-stress [--seeds N] [--base-seed S] [--ops N]
                [--validate-every K] [--no-incremental] [--verbose]
       tcdb_cli checkpoint <dir> [--graph <graph>] [--mutate N,SEED]
       tcdb_cli recover <dir> [--mutate N,SEED] [--query S,D] [--checkpoint]
       tcdb_cli crash-stress [--seeds N] [--base-seed S] [--ops N]
                [--verbose]
       tcdb_cli replicate-bench [--followers N] [--clients N] [--queries N]
                [--mutations N] [--apply-ahead N] [--pipe BYTES]
                [--group-commit N] [--seed S]
       tcdb_cli failover-stress [--seeds N] [--base-seed S] [--ops N]
                [--verbose]
       tcdb_cli scale-bench [--family F] [--n N] [--width W] [--degree D]
                [--locality L] [--cyclic B] [--queries Q] [--seed S]
                [--check K]

graph input (one of):
  --graph FILE             arc-list file ("src dst" lines, '# nodes N' header)
  --generate N,F,L,SEED    synthetic DAG (paper generator)

query (one of):
  --full                   full transitive closure (default)
  --sources A,B,C          partial closure of the listed nodes
  --random-sources K,SEED  partial closure of K random nodes

actions:
  --algorithm NAME         btc|hyb|bj|srch|spn|jkb|jkb2|seminaive|warren
                           (default btc)
  --analyze                print the rectangle model instead of running
  --advise                 print the advisor's recommendation, then run it
  --answer                 print the resulting successor lists
  --aggregate KIND         generalized closure instead of reachability:
                           min-length|max-length|path-count (acyclic
                           inputs only; runs on the BTC machinery)

system parameters:
  --buffer-pages M         buffer pool size (default 20)
  --page-policy P          lru|mru|fifo|clock|random (default lru)
  --list-policy P          move-self|move-largest|move-newest
  --ilimit X               HYB diagonal-block fraction (default 0.2)

reach subcommand (online point query via the src/reach/ index):
  tcdb_cli reach <graph> <src> <dst> [--explain]
    <graph>                arc-list file, or gen:N,F,L,SEED for a
                           synthetic DAG
    --explain              print the deciding index stage and the
                           service's per-stage statistics table

serve-bench subcommand (multi-threaded sharded serving throughput):
  tcdb_cli serve-bench <graph> [flags]
    <graph>                arc-list file, or gen:N,F,L,SEED
    --shards N             server shards / worker threads (default 4)
    --clients N            client threads firing batches (default =shards)
    --queries N            workload size (default 100000)
    --batch N              queries per QueryBatch call (default 256)
    --queue N              per-shard queue capacity (default 64)
    --seed S               workload seed (default 42)
    --workload W           draw the mix from the traffic model instead of
                           the legacy fixed mix: uniform|zipf|hot-pair|
                           adversarial|mixed (adversarial mines pairs the
                           base O(1) rules cannot decide)
    --battery              enable the O'Reach observation battery, trained
                           on a disjoint same-shape traffic sample
    --trace FILE           replay the query mix from a trace file
                           (see workload-bench --dump-trace)
    prints queries/second, the cache hit rate, the merged per-stage and
    per-rule decision tables, the serving-latency histogram, and the
    per-shard query split

workload-bench subcommand (traffic-model mixes, battery off vs on):
  tcdb_cli workload-bench <graph> [flags]
    <graph>                arc-list file, or gen:N,F,L,SEED
    --workload W           uniform|zipf|hot-pair|adversarial|mixed
                           (default adversarial)
    --queries N            workload size (default 20000)
    --seed S               traffic seed (default 42)
    --no-battery           skip the battery run (baseline only)
    --check K              differential smoke: serve K sampled pairs on
                           both cores, compare battery-on vs battery-off
                           answers bit-for-bit and both against a BFS
                           reference; exits 1 on any mismatch. This is
                           the sweep check.sh runs under the sanitizers.
    --dump-trace FILE      write the generated mix as a replayable trace
    --replay FILE          serve a previously dumped trace instead of
                           generating (ignores --workload/--seed)
    prints one JSON line per core (decided rate, O(1)-label rate, cache
    hit rate, per-rule fractions) plus the miner's undecided ratio

stress subcommand (randomized differential storage stress):
  tcdb_cli stress [--seeds N] [--base-seed S] [--verbose]
    runs every algorithm x replacement policy on N randomized (graph,
    pool, query) configurations against the reference closure, with the
    buffer-pool audits armed; exits 1 with a shrunk repro on failure

mutate-bench subcommand (dynamic serving under a mixed update workload):
  tcdb_cli mutate-bench <graph> [flags]
    <graph>                arc-list file, or gen:N,F,L,SEED
    --ops N                total operations to replay (default 50000)
    --update-ratio R       fraction of ops that mutate the graph
                           (default 0.05); the rest are point queries
    --delete-share D       fraction of mutations that delete a live arc
                           (default 0.3); the rest insert a fresh one
    --rebuild-every K      background rebuild trigger: snapshot the log
                           and rebuild the index every K mutations
                           (default 256)
    --budget B             overlay probe budget per patched query
                           (default 4096)
    --seed S               workload seed (default 42)
    --no-incremental       disable the incremental-decided tier (legacy
                           three-tier ladder; same answers, more CPU)
    prints ops/second, the dynamic counters (overlay size, escalation
    rate, snapshots adopted, incremental repairs) and the per-stage
    decision table

mutate-stress subcommand (randomized differential mutation stress):
  tcdb_cli mutate-stress [--seeds N] [--base-seed S] [--ops N]
           [--validate-every K] [--no-incremental] [--verbose]
    replays N randomized mixed insert/delete/query traces across the
    generator's graph families, checking every answer bit-for-bit
    against a reference closure at that epoch, with background rebuilds
    racing the trace; exits 1 with a repro line on failure
    --validate-every K     also validate sampled pairs at every K-th
                           epoch boundary (default 1 = every mutation;
                           0 = only at trace query ops and trace end)
    --no-incremental       replay the identical traces with the
                           incremental tier off; the printed answer
                           digest must match the default run's

checkpoint subcommand (initialize a durable database on disk):
  tcdb_cli checkpoint <dir> [--graph <graph>] [--mutate N,SEED]
    creates (or reuses) <dir>, opens a durable serving stack over the
    graph (default gen:500,5,100,1), optionally applies N random logged
    mutations, and persists a checkpoint + rotated WAL; prints the
    persist counters

recover subcommand (restart the durable database under <dir>):
  tcdb_cli recover <dir> [--mutate N,SEED] [--query S,D] [--checkpoint]
    loads the newest valid checkpoint and replays exactly the WAL
    suffix past it, printing the recovery report; --mutate appends more
    WAL-logged mutations (durable without a checkpoint — a later
    recover replays them), --query answers reaches(S, D) point queries
    (repeatable), --checkpoint persists a fresh cut before exiting

crash-stress subcommand (randomized kill-and-recover differential):
  tcdb_cli crash-stress [--seeds N] [--base-seed S] [--ops N] [--verbose]
    per seed: runs a mixed mutate/query/checkpoint trace on a durable
    stack over a fault-injecting filesystem that kills the "process" at
    a random mutating syscall (optionally tearing the dying write),
    recovers from the surviving image, and checks the recovered epoch,
    the suffix-only replay invariant, every answer and every successor
    list against an in-memory reference — then keeps mutating and
    recovers a second time (idempotence); exits 1 with a repro line on
    failure. This is the sweep check.sh runs under ASan/UBSan.

replicate-bench subcommand (WAL-shipping replication throughput):
  tcdb_cli replicate-bench [flags]
    stands up a primary plus N followers over in-process pipes, fires
    the load_driver workload at every follower from client threads while
    the primary mutates and heartbeats, and prints follower read q/s,
    shipped-record counts, and the epoch-staleness percentiles against
    the configured bound
    --followers N          read replicas (default 2)
    --clients N            client threads per follower (default 2)
    --queries N            queries per follower (default 20000)
    --mutations N          primary mutations during the volley
                           (default 1500)
    --apply-ahead N        follower staleness bound (default 128)
    --pipe BYTES           per-direction transport buffer (default 16384)
    --group-commit N       primary WAL records per fsync (default 8)
    --seed S               workload seed (default 42)

failover-stress subcommand (randomized kill-primary-and-failover):
  tcdb_cli failover-stress [--seeds N] [--base-seed S] [--ops N] [--verbose]
    per seed: a primary on a fault-injecting filesystem ships its WAL to
    1-2 followers (one possibly attaching mid-trace) while a mixed
    mutate/query/checkpoint trace runs with periodic follower read
    barriers; the primary is killed at a random mutating syscall, every
    follower must drain to exactly the last acknowledged epoch, one is
    promoted and checked differentially against the reference (answers
    and successor lists), the rest re-attach to the promoted primary,
    and the trace continues; exits 1 with a repro line on failure. This
    is the sweep check.sh runs under ASan/UBSan.

scale-bench subcommand (chain-decomposition index over a streamed family):
  tcdb_cli scale-bench [--family F] [--n N] [--width W] [--degree D]
           [--locality L] [--cyclic B] [--queries Q] [--seed S] [--check K]
    streams one large-graph family (no arc list is materialized for the
    acyclic path), builds the ChainIndex — condensing first when --cyclic
    makes the input cyclic — times a uniform point-query volley and emits
    one JSON line with n, arcs, num_chains, build_s, bytes_per_node and
    query p50/p99
    --family F             layered | deep-narrow | wide-shallow |
                           scale-free | kronecker (default layered)
    --n N                  nodes (default 100000)
    --width W              layer size / lane count (default 64)
    --degree D             per-node arc budget (default 4)
    --locality L           scale-free forward window (default 64)
    --cyclic B             append B random back arcs; the build then runs
                           through the SCC-condensation front (default 0)
    --queries Q            query volley size (default 100000)
    --seed S               generator seed (default 1)
    --check K              verify the index against the exact BFS cones of
                           K sampled sources before reporting; exits 1 on
                           any mismatch. This is the differential smoke
                           check.sh runs under the sanitizers.
)");
}

bool ParseCsvInts(const std::string& text, std::vector<int64_t>* out) {
  size_t pos = 0;
  while (pos < text.size()) {
    char* end = nullptr;
    errno = 0;
    const long long value = std::strtoll(text.c_str() + pos, &end, 10);
    if (end == text.c_str() + pos || errno != 0) return false;
    out->push_back(value);
    pos = static_cast<size_t>(end - text.c_str());
    if (pos < text.size()) {
      if (text[pos] != ',') return false;
      ++pos;
    }
  }
  return !out->empty();
}

// Loads `<graph>` subcommand operands: an arc-list file, or
// gen:N,F,L,SEED for a synthetic DAG. Returns 0 on success, else the
// process exit code.
int LoadGraphSpec(const std::string& graph_spec, ArcList* arcs,
                  NodeId* num_nodes) {
  if (graph_spec.rfind("gen:", 0) == 0) {
    std::vector<int64_t> params;
    if (!ParseCsvInts(graph_spec.substr(4), &params) || params.size() != 4) {
      std::fprintf(stderr, "gen: expects gen:N,F,L,SEED\n");
      return 2;
    }
    GeneratorParams generator;
    generator.num_nodes = static_cast<NodeId>(params[0]);
    generator.avg_out_degree = static_cast<int32_t>(params[1]);
    generator.locality = static_cast<int32_t>(params[2]);
    generator.seed = static_cast<uint64_t>(params[3]);
    *arcs = GenerateDag(generator);
    *num_nodes = generator.num_nodes;
    return 0;
  }
  auto loaded = ReadArcFile(graph_spec);
  if (!loaded.ok()) {
    std::fprintf(stderr, "%s\n", loaded.status().ToString().c_str());
    return 1;
  }
  *arcs = std::move(loaded.value().arcs);
  *num_nodes = loaded.value().num_nodes;
  return 0;
}

// `tcdb_cli reach <graph> <src> <dst> [--explain]`: builds a ReachIndex
// over the input and answers one reaches(src, dst) point query, optionally
// explaining which rung of the serving ladder decided it.
int RunReach(int argc, char** argv) {
  if (argc < 4) {
    Usage();
    return 2;
  }
  const std::string graph_spec = argv[1];
  const NodeId src = static_cast<NodeId>(std::atoll(argv[2]));
  const NodeId dst = static_cast<NodeId>(std::atoll(argv[3]));
  bool explain = false;
  for (int i = 4; i < argc; ++i) {
    if (std::string(argv[i]) == "--explain") {
      explain = true;
    } else {
      std::fprintf(stderr, "unknown reach flag '%s'\n", argv[i]);
      return 2;
    }
  }

  ArcList arcs;
  NodeId num_nodes = 0;
  if (const int code = LoadGraphSpec(graph_spec, &arcs, &num_nodes)) {
    return code;
  }

  auto service = ReachService::Build(arcs, num_nodes);
  if (!service.ok()) {
    std::fprintf(stderr, "%s\n", service.status().ToString().c_str());
    return 1;
  }
  if (service.value()->condensed()) {
    std::printf("input is cyclic: serving on its condensation\n");
  }
  auto answer = service.value()->Query(src, dst);
  if (!answer.ok()) {
    std::fprintf(stderr, "%s\n", answer.status().ToString().c_str());
    return 1;
  }
  std::printf("%d -> %d: %s (decided by %s)\n", src, dst,
              answer.value().reachable ? "reachable" : "unreachable",
              ReachStageName(answer.value().stage));
  if (explain) {
    std::cout << service.value()->stats().ToString();
  }
  return 0;
}

// Builds a battery-enabled core over `arcs`, training the pivots on a
// traffic sample of the given shape mined against `baseline`'s ladder.
Result<std::shared_ptr<const ReachCore>> BuildBatteryCore(
    const ArcList& arcs, NodeId num_nodes, const Digraph& graph,
    std::shared_ptr<const ReachCore> baseline, WorkloadKind kind,
    uint64_t seed) {
  ReachIndexOptions index_options;
  index_options.oreach = true;
  TrafficModelOptions train;
  train.kind = kind;
  train.seed = seed + 7777;  // disjoint from the served stream
  index_options.oreach_traffic = MakeModelWorkload(
      graph, train, 4096, MakeLadderProbe(std::move(baseline)));
  return ReachCore::Build(arcs, num_nodes, index_options);
}

// `tcdb_cli serve-bench <graph> [flags]`: stands up a sharded ReachServer
// over the input, fires a reproducible workload at it from client threads
// (the legacy fixed mix, a traffic-model mix, or a replayed trace), and
// prints throughput plus the merged serving statistics.
int RunServeBench(int argc, char** argv) {
  if (argc < 2) {
    Usage();
    return 2;
  }
  const std::string graph_spec = argv[1];
  ReachServerOptions options;
  options.queue_capacity = 64;
  int32_t clients = -1;  // default: one client per shard
  int64_t num_queries = 100000;
  size_t batch_size = 256;
  uint64_t seed = 42;
  std::string workload_name;
  std::string trace_file;
  bool battery = false;
  for (int i = 2; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", flag.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (flag == "--shards") {
      options.num_shards = static_cast<int32_t>(std::atoll(next()));
    } else if (flag == "--clients") {
      clients = static_cast<int32_t>(std::atoll(next()));
    } else if (flag == "--queries") {
      num_queries = std::atoll(next());
    } else if (flag == "--batch") {
      batch_size = static_cast<size_t>(std::atoll(next()));
    } else if (flag == "--queue") {
      options.queue_capacity = static_cast<size_t>(std::atoll(next()));
    } else if (flag == "--seed") {
      seed = static_cast<uint64_t>(std::atoll(next()));
    } else if (flag == "--workload") {
      workload_name = next();
    } else if (flag == "--trace") {
      trace_file = next();
    } else if (flag == "--battery") {
      battery = true;
    } else {
      std::fprintf(stderr, "unknown serve-bench flag '%s'\n", flag.c_str());
      return 2;
    }
  }
  if (clients < 0) clients = options.num_shards;

  WorkloadKind kind = WorkloadKind::kMixed;
  if (!workload_name.empty() && !ParseWorkloadKind(workload_name, &kind)) {
    std::fprintf(stderr, "unknown workload '%s'\n", workload_name.c_str());
    return 2;
  }

  ArcList arcs;
  NodeId num_nodes = 0;
  if (const int code = LoadGraphSpec(graph_spec, &arcs, &num_nodes)) {
    return code;
  }
  const Digraph graph(num_nodes, arcs);

  auto baseline = ReachCore::Build(arcs, num_nodes);
  if (!baseline.ok()) {
    std::fprintf(stderr, "%s\n", baseline.status().ToString().c_str());
    return 1;
  }

  std::vector<std::pair<NodeId, NodeId>> workload;
  if (!trace_file.empty()) {
    std::ifstream in(trace_file);
    if (!in) {
      std::fprintf(stderr, "cannot open trace '%s'\n", trace_file.c_str());
      return 1;
    }
    auto trace = ReadTrace(in);
    if (!trace.ok()) {
      std::fprintf(stderr, "%s\n", trace.status().ToString().c_str());
      return 1;
    }
    std::printf("replaying %zu-query %s trace (seed %llu)\n",
                trace.value().pairs.size(),
                WorkloadKindName(trace.value().kind),
                static_cast<unsigned long long>(trace.value().seed));
    workload = std::move(trace.value().pairs);
  } else if (!workload_name.empty()) {
    TrafficModelOptions traffic;
    traffic.kind = kind;
    traffic.seed = seed;
    workload = MakeModelWorkload(graph, traffic, num_queries,
                                 MakeLadderProbe(baseline.value()));
  } else {
    workload = MakeServingWorkload(graph, num_queries, seed);
  }

  std::shared_ptr<const ReachCore> core = baseline.value();
  if (battery) {
    auto built = BuildBatteryCore(arcs, num_nodes, graph, baseline.value(),
                                  kind, seed);
    if (!built.ok()) {
      std::fprintf(stderr, "%s\n", built.status().ToString().c_str());
      return 1;
    }
    core = built.value();
    std::printf("observation battery: %d orders, %d cuts/dir, %d pivots\n",
                core->battery.num_orders(), core->battery.num_cuts(),
                core->battery.num_pivots());
  }

  auto server = ReachServer::Start(core, options);
  if (!server.ok()) {
    std::fprintf(stderr, "%s\n", server.status().ToString().c_str());
    return 1;
  }
  if (server.value()->condensed()) {
    std::printf("input is cyclic: serving on its condensation\n");
  }
  auto report = RunServingLoad(server.value().get(), workload, clients,
                               batch_size);
  if (!report.ok()) {
    std::fprintf(stderr, "%s\n", report.status().ToString().c_str());
    return 1;
  }
  server.value()->Stop();

  const ReachServerStats stats = server.value()->Snapshot();
  std::printf(
      "served %lld queries in %.3fs from %d clients over %d shards: "
      "%.0f q/s\n",
      static_cast<long long>(report.value().queries),
      report.value().seconds, clients, options.num_shards,
      report.value().QueriesPerSecond());
  std::printf("latency %s\n", stats.latency.Summary().c_str());
  std::printf("cache hit rate %.2f%%\n",
              100.0 * stats.merged.CacheHitRate());
  std::printf("queue high-water mark %lld (capacity %lld)\n",
              static_cast<long long>(stats.max_queue_depth),
              static_cast<long long>(options.queue_capacity));
  for (size_t s = 0; s < stats.per_shard.size(); ++s) {
    std::printf("shard %zu: %lld queries, latency %s\n", s,
                static_cast<long long>(stats.per_shard[s].queries),
                stats.per_shard_latency[s].Summary().c_str());
  }
  std::cout << stats.merged.ToString();
  return 0;
}

// `tcdb_cli workload-bench <graph> [flags]`: runs one traffic-model mix
// through a single-threaded ReachService twice — baseline core, then the
// same core with the observation battery — printing one JSON line per
// run. --check serves K sampled pairs on both cores and verifies the
// answers agree bit-for-bit with each other and with a BFS reference
// (the sanitizer smoke in tools/check.sh); --dump-trace/--replay round
// the mix through the replayable trace format.
int RunWorkloadBench(int argc, char** argv) {
  if (argc < 2) {
    Usage();
    return 2;
  }
  const std::string graph_spec = argv[1];
  std::string workload_name = "adversarial";
  int64_t num_queries = 20000;
  uint64_t seed = 42;
  bool use_battery = true;
  int64_t check_pairs = 0;
  std::string dump_file;
  std::string replay_file;
  for (int i = 2; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", flag.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (flag == "--workload") {
      workload_name = next();
    } else if (flag == "--queries") {
      num_queries = std::atoll(next());
    } else if (flag == "--seed") {
      seed = static_cast<uint64_t>(std::atoll(next()));
    } else if (flag == "--no-battery") {
      use_battery = false;
    } else if (flag == "--check") {
      check_pairs = std::atoll(next());
    } else if (flag == "--dump-trace") {
      dump_file = next();
    } else if (flag == "--replay") {
      replay_file = next();
    } else {
      std::fprintf(stderr, "unknown workload-bench flag '%s'\n",
                   flag.c_str());
      return 2;
    }
  }
  WorkloadKind kind = WorkloadKind::kAdversarial;
  if (!ParseWorkloadKind(workload_name, &kind)) {
    std::fprintf(stderr, "unknown workload '%s'\n", workload_name.c_str());
    return 2;
  }

  ArcList arcs;
  NodeId num_nodes = 0;
  if (const int code = LoadGraphSpec(graph_spec, &arcs, &num_nodes)) {
    return code;
  }
  const Digraph graph(num_nodes, arcs);

  auto baseline = ReachCore::Build(arcs, num_nodes);
  if (!baseline.ok()) {
    std::fprintf(stderr, "%s\n", baseline.status().ToString().c_str());
    return 1;
  }

  // The mix: generated by the model (mining against the baseline ladder)
  // or replayed from a trace dumped earlier.
  std::vector<std::pair<NodeId, NodeId>> pairs;
  if (!replay_file.empty()) {
    std::ifstream in(replay_file);
    if (!in) {
      std::fprintf(stderr, "cannot open trace '%s'\n", replay_file.c_str());
      return 1;
    }
    auto trace = ReadTrace(in);
    if (!trace.ok()) {
      std::fprintf(stderr, "%s\n", trace.status().ToString().c_str());
      return 1;
    }
    kind = trace.value().kind;
    seed = trace.value().seed;
    pairs = std::move(trace.value().pairs);
  } else {
    TrafficModelOptions traffic;
    traffic.kind = kind;
    traffic.seed = seed;
    TrafficModel model(graph, traffic, MakeLadderProbe(baseline.value()));
    pairs = model.Take(num_queries);
    if (model.mined_total() > 0) {
      std::printf("miner: %lld/%lld probes left undecided (%.1f%%)\n",
                  static_cast<long long>(model.mined_undecided()),
                  static_cast<long long>(model.mined_total()),
                  100.0 * static_cast<double>(model.mined_undecided()) /
                      static_cast<double>(model.mined_total()));
    }
  }
  if (!dump_file.empty()) {
    std::ofstream out(dump_file);
    if (!out) {
      std::fprintf(stderr, "cannot write trace '%s'\n", dump_file.c_str());
      return 1;
    }
    WorkloadTrace trace;
    trace.kind = kind;
    trace.seed = seed;
    trace.pairs = pairs;
    WriteTrace(out, trace);
    std::printf("trace: %zu queries -> %s\n", pairs.size(),
                dump_file.c_str());
  }

  std::shared_ptr<const ReachCore> battery_core;
  if (use_battery) {
    auto built = BuildBatteryCore(arcs, num_nodes, graph, baseline.value(),
                                  kind, seed);
    if (!built.ok()) {
      std::fprintf(stderr, "%s\n", built.status().ToString().c_str());
      return 1;
    }
    battery_core = built.value();
  }

  // Serve the full mix on each core through a private single-threaded
  // service; emit one JSON line per core.
  auto serve = [&](const std::shared_ptr<const ReachCore>& core,
                   const char* label) -> int {
    std::unique_ptr<ReachService> service = ReachService::Create(core);
    auto answers = service->QueryBatch(pairs);
    if (!answers.ok()) {
      std::fprintf(stderr, "%s: %s\n", label,
                   answers.status().ToString().c_str());
      return 1;
    }
    const ReachStats& s = service->stats();
    const double total =
        static_cast<double>(std::max<int64_t>(s.queries, 1));
    std::printf(
        "{\"bench\": \"workload\", \"workload\": \"%s\", "
        "\"battery\": %s, \"queries\": %lld, \"decided_rate\": %.4f, "
        "\"label_rate\": %.4f, \"cache_hit_rate\": %.4f, \"rules\": {",
        WorkloadKindName(kind), label,
        static_cast<long long>(s.queries),
        static_cast<double>(s.DecidedWithoutFallback()) / total,
        static_cast<double>(s.DecidedWithoutFallback() -
                            s.Decided(ReachStage::kCache)) /
            total,
        s.CacheHitRate());
    bool first = true;
    for (int r = 0; r < kNumReachRules; ++r) {
      if (s.rule_decided[r] == 0) continue;
      std::printf("%s\"%s\": %.4f", first ? "" : ", ",
                  ReachRuleName(static_cast<ReachRule>(r)),
                  static_cast<double>(s.rule_decided[r]) / total);
      first = false;
    }
    std::printf("}}\n");
    return 0;
  };
  if (const int code = serve(baseline.value(), "false")) return code;
  if (battery_core) {
    if (const int code = serve(battery_core, "true")) return code;
  }

  // Differential smoke: both ladders and a BFS reference must agree on a
  // sampled subset, battery answers bit-for-bit equal to baseline.
  if (check_pairs > 0 && !pairs.empty()) {
    std::unique_ptr<ReachService> base_service =
        ReachService::Create(baseline.value());
    std::unique_ptr<ReachService> battery_service;
    if (battery_core) battery_service = ReachService::Create(battery_core);
    Rng rng(seed ^ 0x5bf03635u);
    std::vector<bool> cone(static_cast<size_t>(num_nodes));
    std::vector<NodeId> stack;
    int64_t checked = 0;
    for (int64_t i = 0; i < check_pairs; ++i) {
      const auto [src, dst] =
          pairs[static_cast<size_t>(rng.Uniform(
              0, static_cast<int64_t>(pairs.size()) - 1))];
      // Reference: DFS cone of src on the input graph (reflexive).
      std::fill(cone.begin(), cone.end(), false);
      cone[static_cast<size_t>(src)] = true;
      stack.assign(1, src);
      while (!stack.empty()) {
        const NodeId at = stack.back();
        stack.pop_back();
        for (const NodeId succ : graph.Successors(at)) {
          if (!cone[static_cast<size_t>(succ)]) {
            cone[static_cast<size_t>(succ)] = true;
            stack.push_back(succ);
          }
        }
      }
      const bool expect = cone[static_cast<size_t>(dst)];
      auto base_answer = base_service->Query(src, dst);
      if (!base_answer.ok()) {
        std::fprintf(stderr, "%s\n",
                     base_answer.status().ToString().c_str());
        return 1;
      }
      if (base_answer.value().reachable != expect) {
        std::fprintf(stderr,
                     "CHECK FAIL baseline %d->%d: got %d want %d\n", src,
                     dst, base_answer.value().reachable ? 1 : 0,
                     expect ? 1 : 0);
        return 1;
      }
      if (battery_service) {
        auto battery_answer = battery_service->Query(src, dst);
        if (!battery_answer.ok()) {
          std::fprintf(stderr, "%s\n",
                       battery_answer.status().ToString().c_str());
          return 1;
        }
        if (battery_answer.value().reachable != expect) {
          std::fprintf(stderr,
                       "CHECK FAIL battery %d->%d: got %d want %d\n", src,
                       dst, battery_answer.value().reachable ? 1 : 0,
                       expect ? 1 : 0);
          return 1;
        }
      }
      ++checked;
    }
    std::printf("check: %lld sampled pairs agree with the reference%s\n",
                static_cast<long long>(checked),
                battery_service ? " on both cores" : "");
  }
  return 0;
}

// `tcdb_cli stress [--seeds N] [--base-seed S] [--verbose]`: the
// randomized differential storage stress sweep (bench_support/stress.h).
int RunStress(int argc, char** argv) {
  StressOptions options;
  bool verbose = false;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", flag.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (flag == "--seeds") {
      options.num_seeds = static_cast<int32_t>(std::atoll(next()));
    } else if (flag == "--base-seed") {
      options.base_seed = static_cast<uint64_t>(std::atoll(next()));
    } else if (flag == "--verbose") {
      verbose = true;
    } else {
      std::fprintf(stderr, "unknown stress flag '%s'\n", flag.c_str());
      return 2;
    }
  }
  if (verbose) {
    options.log = [](const std::string& line) {
      std::fprintf(stderr, "%s\n", line.c_str());
    };
  }
  StressReport report;
  StressFailure failure;
  const Status status = RunStorageStress(options, &report, &failure);
  if (!status.ok()) {
    if (status.code() == StatusCode::kInternal) {
      std::fprintf(stderr, "FAIL %s\n", failure.ToString().c_str());
    } else {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
    }
    return 1;
  }
  std::printf("stress: %lld seeds, %lld runs, all clean\n",
              static_cast<long long>(report.seeds),
              static_cast<long long>(report.runs));
  return 0;
}

// `tcdb_cli mutate-bench <graph> [flags]`: dynamic serving throughput — a
// DynamicReachService over a MutationLog, a background IndexRebuilder
// racing the trace, and a reproducible mixed query/insert/delete workload.
int RunMutateBench(int argc, char** argv) {
  if (argc < 2) {
    Usage();
    return 2;
  }
  const std::string graph_spec = argv[1];
  int64_t num_ops = 50000;
  double update_ratio = 0.05;
  double delete_share = 0.3;
  int64_t rebuild_every = 256;
  int64_t budget = 4096;
  uint64_t seed = 42;
  bool incremental = true;
  for (int i = 2; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", flag.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (flag == "--ops") {
      num_ops = std::atoll(next());
    } else if (flag == "--update-ratio") {
      update_ratio = std::atof(next());
    } else if (flag == "--delete-share") {
      delete_share = std::atof(next());
    } else if (flag == "--rebuild-every") {
      rebuild_every = std::atoll(next());
    } else if (flag == "--budget") {
      budget = std::atoll(next());
    } else if (flag == "--seed") {
      seed = static_cast<uint64_t>(std::atoll(next()));
    } else if (flag == "--no-incremental") {
      incremental = false;
    } else {
      std::fprintf(stderr, "unknown mutate-bench flag '%s'\n", flag.c_str());
      return 2;
    }
  }
  if (update_ratio < 0.0 || update_ratio > 1.0 || delete_share < 0.0 ||
      delete_share > 1.0 || rebuild_every < 1) {
    std::fprintf(stderr, "mutate-bench: ratios must be in [0,1] and "
                         "--rebuild-every >= 1\n");
    return 2;
  }

  ArcList arcs;
  NodeId num_nodes = 0;
  if (const int code = LoadGraphSpec(graph_spec, &arcs, &num_nodes)) {
    return code;
  }
  if (num_nodes < 2) {
    std::fprintf(stderr, "mutate-bench needs at least 2 nodes\n");
    return 2;
  }

  auto log = MutationLog::Open(arcs, num_nodes);
  if (!log.ok()) {
    std::fprintf(stderr, "%s\n", log.status().ToString().c_str());
    return 1;
  }
  DynamicReachOptions options;
  options.overlay_probe_budget = budget;
  options.incremental = incremental;
  auto service = DynamicReachService::Create(log.value().get(), options);
  if (!service.ok()) {
    std::fprintf(stderr, "%s\n", service.status().ToString().c_str());
    return 1;
  }
  DynamicReachService* serving = service.value().get();

  IndexRebuilderOptions rebuild_options;
  rebuild_options.mutations_per_rebuild = rebuild_every;
  rebuild_options.rebuild_advised = [serving] {
    return serving->RebuildAdvised();
  };
  IndexRebuilder rebuilder(
      log.value().get(),
      [serving](std::shared_ptr<const ReachCore> core,
                MutationLog::Epoch epoch, double seconds) {
        serving->PublishSnapshot(std::move(core), epoch, seconds);
      },
      rebuild_options);
  rebuilder.Start();

  // Uniform live-arc sampling for deletes: the deduplicated live set,
  // kept in sync by swap-pop.
  std::vector<Arc> live = log.value()->SnapshotArcs().arcs;
  Rng rng(seed);
  int64_t inserts = 0;
  int64_t deletes = 0;
  int64_t queries = 0;
  const auto start = std::chrono::steady_clock::now();
  for (int64_t op = 0; op < num_ops; ++op) {
    bool handled = false;
    if (rng.Bernoulli(update_ratio)) {
      if (!live.empty() && rng.Bernoulli(delete_share)) {
        const size_t pick = static_cast<size_t>(
            rng.Uniform(0, static_cast<int64_t>(live.size()) - 1));
        const Arc victim = live[pick];
        auto epoch = serving->DeleteArc(victim.src, victim.dst);
        if (!epoch.ok()) {
          std::fprintf(stderr, "%s\n", epoch.status().ToString().c_str());
          return 1;
        }
        live[pick] = live.back();
        live.pop_back();
        ++deletes;
        handled = true;
      } else {
        // A handful of draws almost always finds a non-live pair on the
        // sparse study graphs; fall through to a query when it does not.
        for (int attempt = 0; attempt < 32 && !handled; ++attempt) {
          const NodeId src =
              static_cast<NodeId>(rng.Uniform(0, num_nodes - 1));
          const NodeId dst =
              static_cast<NodeId>(rng.Uniform(0, num_nodes - 1));
          if (src == dst || log.value()->HasArc(src, dst)) continue;
          auto epoch = serving->InsertArc(src, dst);
          if (!epoch.ok()) {
            std::fprintf(stderr, "%s\n", epoch.status().ToString().c_str());
            return 1;
          }
          live.push_back(Arc{src, dst});
          ++inserts;
          handled = true;
        }
      }
    }
    if (!handled) {
      const NodeId src = static_cast<NodeId>(rng.Uniform(0, num_nodes - 1));
      const NodeId dst = static_cast<NodeId>(rng.Uniform(0, num_nodes - 1));
      auto answer = serving->Query(src, dst);
      if (!answer.ok()) {
        std::fprintf(stderr, "%s\n", answer.status().ToString().c_str());
        return 1;
      }
      ++queries;
    }
  }
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  rebuilder.Stop();
  serving->AdoptPublishedSnapshot();

  if (const Status audit = log.value()->buffers()->AuditNoPins();
      !audit.ok()) {
    std::fprintf(stderr, "%s\n", audit.ToString().c_str());
    return 1;
  }
  std::printf(
      "replayed %lld ops (%lld inserts, %lld deletes, %lld queries) in "
      "%.3fs: %.0f ops/s\n",
      static_cast<long long>(num_ops), static_cast<long long>(inserts),
      static_cast<long long>(deletes), static_cast<long long>(queries),
      seconds, seconds > 0 ? static_cast<double>(num_ops) / seconds : 0.0);
  std::printf("rebuilds published %lld\n",
              static_cast<long long>(rebuilder.rebuilds_published()));
  std::cout << serving->stats().ToString();
  std::cout << serving->serving_stats().ToString();
  return 0;
}

// `tcdb_cli mutate-stress [flags]`: the randomized differential mutation
// stress sweep (dynamic/mutation_stress.h).
int RunMutateStress(int argc, char** argv) {
  MutationStressOptions options;
  bool verbose = false;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", flag.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (flag == "--seeds") {
      options.num_seeds = static_cast<int32_t>(std::atoll(next()));
    } else if (flag == "--base-seed") {
      options.base_seed = static_cast<uint64_t>(std::atoll(next()));
    } else if (flag == "--ops") {
      options.ops_per_seed = std::atoll(next());
    } else if (flag == "--validate-every") {
      options.validate_every = static_cast<int32_t>(std::atoll(next()));
    } else if (flag == "--no-incremental") {
      options.incremental = false;
    } else if (flag == "--verbose") {
      verbose = true;
    } else {
      std::fprintf(stderr, "unknown mutate-stress flag '%s'\n",
                   flag.c_str());
      return 2;
    }
  }
  if (verbose) {
    options.log = [](const std::string& line) {
      std::fprintf(stderr, "%s\n", line.c_str());
    };
  }
  MutationStressReport report;
  MutationStressFailure failure;
  const Status status = RunMutationStress(options, &report, &failure);
  if (!status.ok()) {
    if (status.code() == StatusCode::kInternal) {
      std::fprintf(stderr, "FAIL %s\n", failure.ToString().c_str());
    } else {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
    }
    return 1;
  }
  std::printf(
      "mutate-stress: %lld seeds, %lld inserts, %lld deletes, %lld queries "
      "(%lld snapshot, %lld incremental, %lld overlay, %lld escalated), "
      "%lld snapshots adopted, %lld epoch validations, all answers match\n",
      static_cast<long long>(report.seeds),
      static_cast<long long>(report.inserts),
      static_cast<long long>(report.deletes),
      static_cast<long long>(report.queries),
      static_cast<long long>(report.snapshot_served),
      static_cast<long long>(report.incremental_served),
      static_cast<long long>(report.overlay_served),
      static_cast<long long>(report.escalations),
      static_cast<long long>(report.snapshots_adopted),
      static_cast<long long>(report.epoch_validations));
  // Configuration-independent fingerprint of the answer stream: check.sh
  // diffs this line between the incremental-on and forced-off sweeps.
  std::printf("answer digest %016llx\n",
              static_cast<unsigned long long>(report.answer_digest));
  return 0;
}

// Applies `ops` random logged mutations (insert when the drawn pair is
// free, delete when it is live) to a durable service. Shared by the
// checkpoint and recover subcommands.
int ApplyRandomMutations(DurableDynamicService* db, int64_t ops,
                         uint64_t seed) {
  Rng rng(seed);
  const NodeId n = db->num_nodes();
  int64_t applied = 0;
  for (int64_t op = 0; op < ops; ++op) {
    const NodeId s = static_cast<NodeId>(rng.Uniform(0, n - 1));
    const NodeId d = static_cast<NodeId>(rng.Uniform(0, n - 1));
    if (s == d) continue;
    const auto epoch = db->log()->HasArc(s, d) ? db->DeleteArc(s, d)
                                               : db->InsertArc(s, d);
    if (!epoch.ok()) {
      std::fprintf(stderr, "mutation failed: %s\n",
                   epoch.status().ToString().c_str());
      return 1;
    }
    ++applied;
  }
  std::printf("applied %lld logged mutations (epoch now %lld)\n",
              static_cast<long long>(applied),
              static_cast<long long>(db->epoch()));
  return 0;
}

int RunCheckpointCmd(int argc, char** argv) {
  if (argc < 2 || argv[1][0] == '-') {
    Usage();
    return 2;
  }
  const std::string dir = argv[1];
  std::string graph_spec = "gen:500,5,100,1";
  int64_t mutate_ops = 0;
  uint64_t mutate_seed = 42;
  for (int i = 2; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", flag.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (flag == "--graph") {
      graph_spec = next();
    } else if (flag == "--mutate") {
      std::vector<int64_t> params;
      if (!ParseCsvInts(next(), &params) || params.size() != 2) {
        std::fprintf(stderr, "--mutate expects N,SEED\n");
        return 2;
      }
      mutate_ops = params[0];
      mutate_seed = static_cast<uint64_t>(params[1]);
    } else {
      std::fprintf(stderr, "unknown checkpoint flag '%s'\n", flag.c_str());
      return 2;
    }
  }
  ArcList arcs;
  NodeId num_nodes = 0;
  if (const int code = LoadGraphSpec(graph_spec, &arcs, &num_nodes);
      code != 0) {
    return code;
  }
  auto db = DurableDynamicService::Create(PosixFs(), dir, arcs, num_nodes);
  if (!db.ok()) {
    std::fprintf(stderr, "%s\n", db.status().ToString().c_str());
    return 1;
  }
  if (mutate_ops > 0) {
    if (const int code =
            ApplyRandomMutations(db.value().get(), mutate_ops, mutate_seed);
        code != 0) {
      return code;
    }
    if (const Status status = db.value()->Checkpoint(); !status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      return 1;
    }
  }
  const PersistStats& stats = db.value()->persist_stats();
  std::printf(
      "checkpoint: %s at epoch %lld (%lld nodes, %lld checkpoints, "
      "%lld bytes newest, %lld WAL records / %lld bytes, %lld syncs)\n",
      dir.c_str(), static_cast<long long>(db.value()->epoch()),
      static_cast<long long>(num_nodes),
      static_cast<long long>(stats.checkpoints_written),
      static_cast<long long>(stats.last_checkpoint_bytes),
      static_cast<long long>(stats.wal_records_appended),
      static_cast<long long>(stats.wal_bytes_appended),
      static_cast<long long>(stats.wal_syncs));
  return 0;
}

int RunRecoverCmd(int argc, char** argv) {
  if (argc < 2 || argv[1][0] == '-') {
    Usage();
    return 2;
  }
  const std::string dir = argv[1];
  int64_t mutate_ops = 0;
  uint64_t mutate_seed = 42;
  bool take_checkpoint = false;
  std::vector<std::pair<NodeId, NodeId>> queries;
  for (int i = 2; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", flag.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (flag == "--mutate") {
      std::vector<int64_t> params;
      if (!ParseCsvInts(next(), &params) || params.size() != 2) {
        std::fprintf(stderr, "--mutate expects N,SEED\n");
        return 2;
      }
      mutate_ops = params[0];
      mutate_seed = static_cast<uint64_t>(params[1]);
    } else if (flag == "--query") {
      std::vector<int64_t> params;
      if (!ParseCsvInts(next(), &params) || params.size() != 2) {
        std::fprintf(stderr, "--query expects S,D\n");
        return 2;
      }
      queries.emplace_back(static_cast<NodeId>(params[0]),
                           static_cast<NodeId>(params[1]));
    } else if (flag == "--checkpoint") {
      take_checkpoint = true;
    } else {
      std::fprintf(stderr, "unknown recover flag '%s'\n", flag.c_str());
      return 2;
    }
  }
  RecoveryReport report;
  auto db = DurableDynamicService::Recover(PosixFs(), dir, {}, &report);
  if (!db.ok()) {
    std::fprintf(stderr, "%s\n", db.status().ToString().c_str());
    return 1;
  }
  std::printf(
      "recovered: %s at epoch %lld (checkpoint %lld + %lld replayed WAL "
      "records, %lld stale skipped, %lld torn bytes dropped, %lld damaged "
      "checkpoints passed over)\n",
      dir.c_str(), static_cast<long long>(report.recovered_epoch),
      static_cast<long long>(report.checkpoint_epoch),
      static_cast<long long>(report.replayed_entries),
      static_cast<long long>(report.stale_entries_skipped),
      static_cast<long long>(report.torn_bytes_dropped),
      static_cast<long long>(report.checkpoints_skipped));
  if (mutate_ops > 0) {
    if (const int code =
            ApplyRandomMutations(db.value().get(), mutate_ops, mutate_seed);
        code != 0) {
      return code;
    }
  }
  for (const auto& [src, dst] : queries) {
    auto answer = db.value()->Query(src, dst);
    if (!answer.ok()) {
      std::fprintf(stderr, "%s\n", answer.status().ToString().c_str());
      return 1;
    }
    std::printf("reaches(%d, %d) = %s\n", src, dst,
                answer.value().reachable ? "yes" : "no");
  }
  if (take_checkpoint) {
    if (const Status status = db.value()->Checkpoint(); !status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      return 1;
    }
    std::printf("checkpointed at epoch %lld\n",
                static_cast<long long>(db.value()->epoch()));
  }
  return 0;
}

int RunCrashStressCmd(int argc, char** argv) {
  CrashStressOptions options;
  bool verbose = false;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", flag.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (flag == "--seeds") {
      options.num_seeds = static_cast<int32_t>(std::atoll(next()));
    } else if (flag == "--base-seed") {
      options.base_seed = static_cast<uint64_t>(std::atoll(next()));
    } else if (flag == "--ops") {
      options.ops_per_seed = static_cast<int32_t>(std::atoll(next()));
    } else if (flag == "--verbose") {
      verbose = true;
    } else {
      std::fprintf(stderr, "unknown crash-stress flag '%s'\n", flag.c_str());
      return 2;
    }
  }
  if (verbose) {
    options.log = [](const std::string& line) {
      std::fprintf(stderr, "%s\n", line.c_str());
    };
  }
  CrashStressReport report;
  CrashStressFailure failure;
  const Status status = RunCrashStress(options, &report, &failure);
  if (!status.ok()) {
    if (status.code() == StatusCode::kInternal) {
      std::fprintf(stderr, "FAIL %s\n", failure.ToString().c_str());
    } else {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
    }
    return 1;
  }
  std::printf(
      "crash-stress: %lld seeds (%lld crashed, %lld torn), %lld mutations, "
      "%lld checkpoints, %lld WAL records replayed (%lld stale skipped, "
      "%lld torn tails repaired), %lld differential queries, all states "
      "match\n",
      static_cast<long long>(report.seeds),
      static_cast<long long>(report.crashes_injected),
      static_cast<long long>(report.torn_writes),
      static_cast<long long>(report.ops_applied),
      static_cast<long long>(report.checkpoints_completed),
      static_cast<long long>(report.replayed_entries),
      static_cast<long long>(report.stale_entries_skipped),
      static_cast<long long>(report.torn_tails_repaired),
      static_cast<long long>(report.queries_checked));
  return 0;
}

// `tcdb_cli replicate-bench [flags]`: one measured replication
// configuration (src/replica/replica_bench.h) — follower read q/s and
// staleness percentiles under a concurrent primary mutation stream.
int RunReplicateBench(int argc, char** argv) {
  ReplicaBenchOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", flag.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (flag == "--followers") {
      options.num_followers = static_cast<int32_t>(std::atoll(next()));
    } else if (flag == "--clients") {
      options.clients_per_follower = static_cast<int32_t>(std::atoll(next()));
    } else if (flag == "--queries") {
      options.queries_per_follower = std::atoll(next());
    } else if (flag == "--mutations") {
      options.mutations = std::atoll(next());
    } else if (flag == "--apply-ahead") {
      options.max_apply_ahead = std::atoll(next());
    } else if (flag == "--pipe") {
      options.pipe_capacity_bytes = static_cast<size_t>(std::atoll(next()));
    } else if (flag == "--group-commit") {
      options.group_commit_records = static_cast<int32_t>(std::atoll(next()));
    } else if (flag == "--seed") {
      options.seed = static_cast<uint64_t>(std::atoll(next()));
    } else {
      std::fprintf(stderr, "unknown replicate-bench flag '%s'\n",
                   flag.c_str());
      return 2;
    }
  }
  auto result = RunReplicaBench(options);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }
  const ReplicaBenchResult& r = result.value();
  std::printf(
      "served %lld follower queries in %.3fs across %d followers x %d "
      "clients: %.0f q/s\n",
      static_cast<long long>(r.queries), r.query_seconds, r.num_followers,
      options.clients_per_follower, r.QueriesPerSecond());
  std::printf(
      "primary applied %lld mutations in %.3fs, shipped %lld records and "
      "%lld heartbeats\n",
      static_cast<long long>(r.mutations_applied), r.mutate_seconds,
      static_cast<long long>(r.records_shipped),
      static_cast<long long>(r.heartbeats_sent));
  std::printf(
      "staleness (epochs) over %lld samples: p50 %lld p90 %lld p99 %lld "
      "max %lld (bound %lld, %lld forced refreshes) %s\n",
      static_cast<long long>(r.lag_samples),
      static_cast<long long>(r.lag_p50), static_cast<long long>(r.lag_p90),
      static_cast<long long>(r.lag_p99), static_cast<long long>(r.lag_max),
      static_cast<long long>(r.lag_bound),
      static_cast<long long>(r.forced_refreshes),
      r.lag_within_bound ? "OK" : "EXCEEDED");
  return r.lag_within_bound ? 0 : 1;
}

// `tcdb_cli failover-stress [flags]`: the randomized
// kill-primary-and-failover differential sweep (src/replica/
// failover_harness.h).
int RunFailoverStressCmd(int argc, char** argv) {
  FailoverStressOptions options;
  bool verbose = false;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", flag.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (flag == "--seeds") {
      options.num_seeds = static_cast<int32_t>(std::atoll(next()));
    } else if (flag == "--base-seed") {
      options.base_seed = static_cast<uint64_t>(std::atoll(next()));
    } else if (flag == "--ops") {
      options.ops_per_seed = static_cast<int32_t>(std::atoll(next()));
    } else if (flag == "--verbose") {
      verbose = true;
    } else {
      std::fprintf(stderr, "unknown failover-stress flag '%s'\n",
                   flag.c_str());
      return 2;
    }
  }
  if (verbose) {
    options.log = [](const std::string& line) {
      std::fprintf(stderr, "%s\n", line.c_str());
    };
  }
  FailoverStressReport report;
  FailoverStressFailure failure;
  const Status status = RunFailoverStress(options, &report, &failure);
  if (!status.ok()) {
    if (status.code() == StatusCode::kInternal) {
      std::fprintf(stderr, "FAIL %s\n", failure.ToString().c_str());
    } else {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
    }
    return 1;
  }
  std::printf(
      "failover-stress: %lld seeds (%lld crashed), %lld followers attached "
      "(%lld mid-trace, %lld re-attached), %lld promotions, %lld mutations, "
      "%lld records shipped, %lld checkpoints shipped, %lld differential "
      "queries, all failovers exact\n",
      static_cast<long long>(report.seeds),
      static_cast<long long>(report.crashes_injected),
      static_cast<long long>(report.followers_attached),
      static_cast<long long>(report.mid_trace_attaches),
      static_cast<long long>(report.reattaches),
      static_cast<long long>(report.promotions),
      static_cast<long long>(report.ops_applied),
      static_cast<long long>(report.records_shipped),
      static_cast<long long>(report.checkpoints_shipped),
      static_cast<long long>(report.queries_checked));
  return 0;
}

// `tcdb_cli scale-bench [flags]`: streams one large-graph family, builds
// the ChainIndex over it (condensing first when --cyclic makes the input
// cyclic), times a uniform point-query volley and emits one JSON line.
// --check K first verifies the index against the exact BFS cones of K
// sampled sources and exits 1 on any mismatch — the sanitizer smoke in
// check.sh runs in this mode.
int RunScaleBench(int argc, char** argv) {
  ScaleGraphParams params;
  params.locality = 64;
  int64_t num_queries = 100000;
  int32_t check_sources = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", flag.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (flag == "--family") {
      auto parsed = ParseScaleFamily(next());
      if (!parsed.ok()) {
        std::fprintf(stderr, "%s\n", parsed.status().ToString().c_str());
        return 2;
      }
      params.family = parsed.value();
    } else if (flag == "--n") {
      params.num_nodes = static_cast<NodeId>(std::atoll(next()));
    } else if (flag == "--width") {
      params.width = static_cast<int32_t>(std::atoll(next()));
    } else if (flag == "--degree") {
      params.degree = static_cast<int32_t>(std::atoll(next()));
    } else if (flag == "--locality") {
      params.locality = static_cast<int32_t>(std::atoll(next()));
    } else if (flag == "--cyclic") {
      params.num_back_arcs = static_cast<int32_t>(std::atoll(next()));
    } else if (flag == "--queries") {
      num_queries = std::atoll(next());
    } else if (flag == "--seed") {
      params.seed = static_cast<uint64_t>(std::atoll(next()));
    } else if (flag == "--check") {
      check_sources = static_cast<int32_t>(std::atoll(next()));
    } else {
      std::fprintf(stderr, "unknown scale-bench flag '%s'\n", flag.c_str());
      return 2;
    }
  }

  WallTimer timer;
  const Digraph graph = BuildScaleGraph(params);
  const double gen_seconds = timer.ElapsedSeconds();
  const NodeId n = graph.NumNodes();

  // With back arcs the input is cyclic and the build runs through the
  // condensation front; the acyclic path indexes the graph directly so
  // build_s stays a pure ChainIndex number.
  timer.Restart();
  Condensation cond;
  const bool condensed = params.num_back_arcs > 0;
  if (condensed) cond = Condense(graph);
  auto built = ChainIndex::Build(condensed ? cond.dag : graph);
  const double build_seconds = timer.ElapsedSeconds();
  if (!built.ok()) {
    std::fprintf(stderr, "%s\n", built.status().ToString().c_str());
    return 1;
  }
  const ChainIndex& index = built.value();
  const auto reaches = [&](NodeId u, NodeId v) {
    return condensed ? index.Reaches(cond.node_map[u], cond.node_map[v])
                     : index.Reaches(u, v);
  };

  if (check_sources > 0 && n > 0) {
    const std::vector<NodeId> sources = SampleSourceNodes(
        n, std::min<NodeId>(check_sources, n), params.seed * 31 + 5);
    const auto cones = ReferencePartialClosure(graph, sources);
    for (size_t s = 0; s < sources.size(); ++s) {
      const NodeId src = sources[s];
      for (NodeId v = 0; v < n; ++v) {
        const bool expected =
            src == v ||
            std::binary_search(cones[s].begin(), cones[s].end(), v);
        if (reaches(src, v) != expected) {
          std::fprintf(stderr,
                       "scale-bench check FAILED: family=%s n=%d seed=%llu "
                       "cyclic=%d pair (%d, %d): index=%d reference=%d\n",
                       ScaleFamilyName(params.family), n,
                       static_cast<unsigned long long>(params.seed),
                       params.num_back_arcs, src, v, expected ? 0 : 1,
                       expected ? 1 : 0);
          return 1;
        }
      }
    }
  }

  // Per-query latency over uniform pairs, timed in 64-query blocks (the
  // block mean is the per-query cost at ~ns granularity). The positive
  // count is reported so the loop stays observable.
  double p50_s = 0;
  double p99_s = 0;
  int64_t positive = 0;
  if (n > 0 && num_queries > 0) {
    Rng rng(params.seed ^ 0xc0ffee);
    std::vector<std::pair<NodeId, NodeId>> pairs(
        static_cast<size_t>(num_queries));
    for (auto& [u, v] : pairs) {
      u = static_cast<NodeId>(rng.Uniform(0, n - 1));
      v = static_cast<NodeId>(rng.Uniform(0, n - 1));
    }
    constexpr int64_t kBlock = 64;
    std::vector<double> block_s;
    block_s.reserve(static_cast<size_t>(num_queries / kBlock) + 1);
    for (int64_t begin = 0; begin < num_queries; begin += kBlock) {
      const int64_t end = std::min(begin + kBlock, num_queries);
      WallTimer block_timer;
      for (int64_t i = begin; i < end; ++i) {
        positive += reaches(pairs[static_cast<size_t>(i)].first,
                            pairs[static_cast<size_t>(i)].second)
                        ? 1
                        : 0;
      }
      block_s.push_back(block_timer.ElapsedSeconds() /
                        static_cast<double>(end - begin));
    }
    std::sort(block_s.begin(), block_s.end());
    p50_s = block_s[block_s.size() / 2];
    p99_s = block_s[block_s.size() * 99 / 100];
  }

  std::printf(
      "{\"family\": \"%s\", \"n\": %d, \"arcs\": %lld, \"cyclic\": %d, "
      "\"num_chains\": %d, \"gen_s\": %.6f, \"build_s\": %.6f, "
      "\"bytes_per_node\": %.2f, \"queries\": %lld, \"positive\": %lld, "
      "\"query_p50_s\": %.9f, \"query_p99_s\": %.9f, "
      "\"checked_sources\": %d}\n",
      ScaleFamilyName(params.family), n,
      static_cast<long long>(graph.NumArcs()), params.num_back_arcs,
      index.num_chains(), gen_seconds, build_seconds, index.BytesPerNode(),
      static_cast<long long>(num_queries), static_cast<long long>(positive),
      p50_s, p99_s, check_sources);
  return 0;
}

int Run(int argc, char** argv) {
  if (argc >= 2 && std::strcmp(argv[1], "reach") == 0) {
    return RunReach(argc - 1, argv + 1);
  }
  if (argc >= 2 && std::strcmp(argv[1], "serve-bench") == 0) {
    return RunServeBench(argc - 1, argv + 1);
  }
  if (argc >= 2 && std::strcmp(argv[1], "workload-bench") == 0) {
    return RunWorkloadBench(argc - 1, argv + 1);
  }
  if (argc >= 2 && std::strcmp(argv[1], "stress") == 0) {
    return RunStress(argc - 1, argv + 1);
  }
  if (argc >= 2 && std::strcmp(argv[1], "mutate-bench") == 0) {
    return RunMutateBench(argc - 1, argv + 1);
  }
  if (argc >= 2 && std::strcmp(argv[1], "mutate-stress") == 0) {
    return RunMutateStress(argc - 1, argv + 1);
  }
  if (argc >= 2 && std::strcmp(argv[1], "checkpoint") == 0) {
    return RunCheckpointCmd(argc - 1, argv + 1);
  }
  if (argc >= 2 && std::strcmp(argv[1], "recover") == 0) {
    return RunRecoverCmd(argc - 1, argv + 1);
  }
  if (argc >= 2 && std::strcmp(argv[1], "crash-stress") == 0) {
    return RunCrashStressCmd(argc - 1, argv + 1);
  }
  if (argc >= 2 && std::strcmp(argv[1], "replicate-bench") == 0) {
    return RunReplicateBench(argc - 1, argv + 1);
  }
  if (argc >= 2 && std::strcmp(argv[1], "scale-bench") == 0) {
    return RunScaleBench(argc - 1, argv + 1);
  }
  if (argc >= 2 && std::strcmp(argv[1], "failover-stress") == 0) {
    return RunFailoverStressCmd(argc - 1, argv + 1);
  }
  std::string graph_file;
  std::vector<int64_t> generate_params;
  std::vector<NodeId> sources;
  int32_t random_source_count = -1;
  uint64_t random_source_seed = 0;
  bool full = true;
  bool analyze = false;
  bool advise = false;
  bool print_answer = false;
  std::string algorithm_name = "btc";
  std::string aggregate_name;
  ExecOptions options;

  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", flag.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (flag == "--graph") {
      graph_file = next();
    } else if (flag == "--generate") {
      if (!ParseCsvInts(next(), &generate_params) ||
          generate_params.size() != 4) {
        std::fprintf(stderr, "--generate expects N,F,L,SEED\n");
        return 2;
      }
    } else if (flag == "--full") {
      full = true;
    } else if (flag == "--sources") {
      std::vector<int64_t> values;
      if (!ParseCsvInts(next(), &values)) {
        std::fprintf(stderr, "--sources expects a comma-separated list\n");
        return 2;
      }
      for (int64_t v : values) sources.push_back(static_cast<NodeId>(v));
      full = false;
    } else if (flag == "--random-sources") {
      std::vector<int64_t> values;
      if (!ParseCsvInts(next(), &values) || values.size() != 2) {
        std::fprintf(stderr, "--random-sources expects K,SEED\n");
        return 2;
      }
      // Resolved after the graph is loaded (needs the node count).
      random_source_count = static_cast<int32_t>(values[0]);
      random_source_seed = static_cast<uint64_t>(values[1]);
      full = false;
    } else if (flag == "--algorithm") {
      algorithm_name = next();
    } else if (flag == "--aggregate") {
      aggregate_name = next();
    } else if (flag == "--analyze") {
      analyze = true;
    } else if (flag == "--advise") {
      advise = true;
    } else if (flag == "--answer") {
      print_answer = true;
    } else if (flag == "--buffer-pages") {
      options.buffer_pages = static_cast<size_t>(std::atoll(next()));
    } else if (flag == "--ilimit") {
      options.ilimit = std::atof(next());
    } else if (flag == "--page-policy") {
      const std::string name = next();
      bool found = false;
      for (const PagePolicy policy :
           {PagePolicy::kLru, PagePolicy::kMru, PagePolicy::kFifo,
            PagePolicy::kClock, PagePolicy::kRandom}) {
        if (name == PagePolicyName(policy)) {
          options.page_policy = policy;
          found = true;
        }
      }
      if (!found) {
        std::fprintf(stderr, "unknown page policy '%s'\n", name.c_str());
        return 2;
      }
    } else if (flag == "--list-policy") {
      const std::string name = next();
      bool found = false;
      for (const ListPolicy policy :
           {ListPolicy::kMoveSelf, ListPolicy::kMoveLargest,
            ListPolicy::kMoveNewest}) {
        if (name == ListPolicyName(policy)) {
          options.list_policy = policy;
          found = true;
        }
      }
      if (!found) {
        std::fprintf(stderr, "unknown list policy '%s'\n", name.c_str());
        return 2;
      }
    } else if (flag == "--help" || flag == "-h") {
      Usage();
      return 0;
    } else {
      std::fprintf(stderr, "unknown flag '%s'\n", flag.c_str());
      Usage();
      return 2;
    }
  }

  // --- Load the graph.
  ArcList arcs;
  NodeId num_nodes = 0;
  if (!graph_file.empty()) {
    auto loaded = ReadArcFile(graph_file);
    if (!loaded.ok()) {
      std::fprintf(stderr, "%s\n", loaded.status().ToString().c_str());
      return 1;
    }
    arcs = std::move(loaded.value().arcs);
    num_nodes = loaded.value().num_nodes;
  } else if (generate_params.size() == 4) {
    GeneratorParams params;
    params.num_nodes = static_cast<NodeId>(generate_params[0]);
    params.avg_out_degree = static_cast<int32_t>(generate_params[1]);
    params.locality = static_cast<int32_t>(generate_params[2]);
    params.seed = static_cast<uint64_t>(generate_params[3]);
    arcs = GenerateDag(params);
    num_nodes = params.num_nodes;
  } else {
    std::fprintf(stderr, "need --graph or --generate\n");
    Usage();
    return 2;
  }

  // Resolve deferred random sources.
  if (!full && random_source_count >= 0) {
    sources = SampleSourceNodes(num_nodes, random_source_count,
                                random_source_seed);
  }

  // --- Cyclic inputs are condensed transparently.
  auto closure = CyclicClosure::Create(arcs, num_nodes);
  if (!closure.ok()) {
    std::fprintf(stderr, "%s\n", closure.status().ToString().c_str());
    return 1;
  }
  const TcDatabase& db = closure.value()->condensation();
  if (db.num_nodes() != num_nodes) {
    std::printf("input is cyclic: condensed %d nodes into %d components\n",
                num_nodes, db.num_nodes());
  }

  auto model = db.Analyze();
  if (!model.ok()) {
    std::fprintf(stderr, "%s\n", model.status().ToString().c_str());
    return 1;
  }
  if (analyze) {
    const RectangleModel& m = model.value();
    std::printf("nodes %d  arcs %lld\n", db.num_nodes(),
                static_cast<long long>(m.num_arcs));
    std::printf("H(G) %.1f  W(G) %.1f  max level %d\n", m.height, m.width,
                m.max_level);
    std::printf("avg locality %.1f  avg irredundant locality %.1f\n",
                m.avg_arc_locality, m.avg_irredundant_locality);
    std::printf("redundant arcs %lld  |TC(G)| %lld\n",
                static_cast<long long>(m.num_redundant_arcs),
                static_cast<long long>(m.closure_size));
    return 0;
  }

  const QuerySpec query =
      full ? QuerySpec::Full() : QuerySpec::Partial(sources);

  if (!aggregate_name.empty()) {
    PathAggregate aggregate;
    if (aggregate_name == "min-length") {
      aggregate = PathAggregate::kMinLength;
    } else if (aggregate_name == "max-length") {
      aggregate = PathAggregate::kMaxLength;
    } else if (aggregate_name == "path-count") {
      aggregate = PathAggregate::kPathCount;
    } else {
      std::fprintf(stderr, "unknown aggregate '%s'\n",
                   aggregate_name.c_str());
      return 2;
    }
    if (db.num_nodes() != num_nodes) {
      std::fprintf(stderr,
                   "--aggregate requires an acyclic input (path aggregates "
                   "over cycles are unbounded)\n");
      return 2;
    }
    options.capture_answer = print_answer;
    auto aggregate_db = TcDatabase::Create(arcs, num_nodes);
    if (!aggregate_db.ok()) {
      std::fprintf(stderr, "%s\n",
                   aggregate_db.status().ToString().c_str());
      return 1;
    }
    auto run =
        aggregate_db.value()->ExecuteAggregate(aggregate, query, options);
    if (!run.ok()) {
      std::fprintf(stderr, "%s\n", run.status().ToString().c_str());
      return 1;
    }
    if (print_answer) {
      for (const auto& [node, pairs] : run.value().answer) {
        std::printf("%d:", node);
        for (const auto& [successor, value] : pairs) {
          std::printf(" %d=%lld", successor,
                      static_cast<long long>(value));
        }
        std::printf("\n");
      }
    }
    std::fprintf(stderr, "[%s] %s\n", PathAggregateName(aggregate),
                 run.value().metrics.ToString().c_str());
    return 0;
  }

  Algorithm algorithm;
  if (advise) {
    const Advice advice =
        RecommendAlgorithm(model.value(), db.num_nodes(), query);
    std::printf("advisor: %s — %s\n", AlgorithmName(advice.algorithm),
                advice.rationale.c_str());
    algorithm = advice.algorithm;
  } else {
    auto parsed = AlgorithmFromName(algorithm_name);
    if (!parsed.ok()) {
      std::fprintf(stderr, "%s\n", parsed.status().ToString().c_str());
      return 2;
    }
    algorithm = parsed.value();
  }

  options.capture_answer = print_answer;
  auto run = closure.value()->Execute(algorithm, query, options);
  if (!run.ok()) {
    std::fprintf(stderr, "%s\n", run.status().ToString().c_str());
    return 1;
  }
  if (print_answer) {
    for (const auto& [node, successors] : run.value().answer) {
      std::printf("%d:", node);
      for (const NodeId successor : successors) {
        std::printf(" %d", successor);
      }
      std::printf("\n");
    }
  }
  const RunMetrics& m = run.value().metrics;
  std::fprintf(stderr, "[%s] %s\n", AlgorithmName(algorithm),
               m.ToString().c_str());
  std::fprintf(stderr, "[%s] est. I/O time at %.0fms/page: %.2fs\n",
               AlgorithmName(algorithm), options.io_latency_s * 1000,
               m.EstimatedIoSeconds(options.io_latency_s));
  return 0;
}

}  // namespace
}  // namespace tcdb

int main(int argc, char** argv) { return tcdb::Run(argc, argv); }
